//! Bridge from a `[service]` scenario to a runnable [`ServiceConfig`].
//!
//! A service scenario is one TOML file read as a *persistent configuration*:
//! the `[scenario]` shape, topology, faults and validity mode are built once
//! and shared by every instance, while the `[service]` table stamps out the
//! per-instance overrides — seed (cycled or sequential), freshly generated
//! honest inputs and an optional strategy rotation.  The resulting
//! [`ServiceConfig`] feeds [`bvc_service::BvcService`] directly.

use crate::runner::{
    generate_inputs, protocol_kind, run_config_from_spec, ScenarioError, TOPOLOGY_SEED_SALT,
};
use crate::schema::{ScenarioSpec, ServiceSpec};
use bvc_core::InstanceOverrides;
use bvc_service::{CacheMode, ServiceConfig};

/// Builds the multi-shot service stream a `[service]` scenario declares.
///
/// The topology (if any) is materialised **once** from the base seed — the
/// stream models repeated consensus over one persistent substrate, unlike
/// campaign sweeps which rebuild it per instance seed.  Instance `i` runs at
/// seed `base + (i % seed_cycle)` (or `base + i` when the cycle is 0) with
/// inputs regenerated from that seed, so a short cycle yields repeated
/// configurations whose Γ queries the shared cache can answer.
///
/// # Errors
///
/// [`ScenarioError::Rejected`] when the file has no `[service]` section or
/// the topology cannot be built; [`ScenarioError::BadInputs`] when the input
/// generator cannot satisfy the scenario shape.  Per-instance admission
/// checks happen later, in [`bvc_service::BvcService::new`].
pub fn service_config_from_spec(spec: &ScenarioSpec) -> Result<ServiceConfig, ScenarioError> {
    let Some(service) = &spec.service else {
        return Err(ScenarioError::Rejected(
            "scenario has no [service] section".into(),
        ));
    };
    let topology = match &spec.topology {
        None => None,
        Some(t) => Some(
            t.build(spec.n, spec.seed ^ TOPOLOGY_SEED_SALT)
                .map_err(|e| ScenarioError::Rejected(e.to_string()))?,
        ),
    };
    let template = run_config_from_spec(
        spec,
        spec.seed,
        spec.strategy,
        spec.policy.clone(),
        topology.as_ref(),
        spec.validity.as_ref(),
    )?;
    let overrides = instance_overrides(spec, service)?;
    let cache_mode = if service.shared_cache {
        CacheMode::Shared
    } else {
        CacheMode::PerInstance
    };
    Ok(ServiceConfig::new(protocol_kind(spec.protocol), template)
        .instances(overrides)
        .workers(service.workers)
        .batch(service.batch)
        .cache_mode(cache_mode)
        .label(spec.name.clone()))
}

/// The per-instance override list of a service stream: seeds, regenerated
/// inputs, and the strategy rotation.
fn instance_overrides(
    spec: &ScenarioSpec,
    service: &ServiceSpec,
) -> Result<Vec<InstanceOverrides>, ScenarioError> {
    (0..service.instances)
        .map(|i| {
            let offset = if service.seed_cycle == 0 {
                i as u64
            } else {
                i as u64 % service.seed_cycle
            };
            let seed = spec.seed.wrapping_add(offset);
            let adversary = if service.strategies.is_empty() {
                None
            } else {
                Some(service.strategies[i % service.strategies.len()])
            };
            Ok(InstanceOverrides {
                seed,
                honest_inputs: Some(generate_inputs(spec, seed)?),
                adversary,
                validity: None,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvc_adversary::ByzantineStrategy;
    use bvc_service::{BvcService, MemorySink};

    fn service_spec(extra: &str) -> ScenarioSpec {
        ScenarioSpec::from_toml(&format!(
            "[scenario]\nname = \"svc\"\nprotocol = \"restricted-sync\"\nn = 5\nf = 1\nd = 2\n\
             epsilon = 0.1\nseed = 3\n\
             [inputs]\ngenerator = \"random-ball\"\nradius = 0.2\n\
             [service]\ninstances = 6\n{extra}"
        ))
        .unwrap()
    }

    #[test]
    fn seeds_cycle_and_strategies_rotate() {
        let spec = service_spec("seed_cycle = 2\nstrategies = [\"silent\", \"equivocate\"]\n");
        let config = service_config_from_spec(&spec).unwrap();
        assert_eq!(config.instances.len(), 6);
        let seeds: Vec<u64> = config.instances.iter().map(|o| o.seed).collect();
        assert_eq!(seeds, [3, 4, 3, 4, 3, 4], "base 3, cycle 2");
        assert_eq!(
            config.instances[0].adversary,
            Some(ByzantineStrategy::Silent)
        );
        assert_eq!(
            config.instances[1].adversary,
            Some(ByzantineStrategy::Equivocate)
        );
        // Equal seeds regenerate equal inputs — the cache-reuse substrate.
        assert_eq!(
            config.instances[0].honest_inputs,
            config.instances[2].honest_inputs
        );
        assert_eq!(config.label, "svc");
    }

    #[test]
    fn a_declared_stream_runs_end_to_end() {
        let spec = service_spec("seed_cycle = 3\nbatch = 2\nworkers = 2\n");
        let config = service_config_from_spec(&spec).unwrap();
        let mut sink = MemorySink::new();
        let stats = BvcService::new(config)
            .expect("stream admits")
            .run(&mut sink)
            .expect("memory sink cannot fail");
        assert_eq!(sink.lines().len(), 6);
        assert_eq!(stats.decided, 6);
        assert!(
            stats.cache.shared_hits > 0,
            "cycled seeds must reuse Γ answers: {:?}",
            stats.cache
        );
        assert!(sink.lines()[0].starts_with("{\"service\": \"svc\", \"instance\": 0, "));
    }

    #[test]
    fn files_without_a_service_section_are_rejected() {
        let spec = ScenarioSpec::from_toml(
            "[scenario]\nname = \"plain\"\nprotocol = \"exact\"\nn = 5\nf = 1\nd = 2\n",
        )
        .unwrap();
        assert!(matches!(
            service_config_from_spec(&spec),
            Err(ScenarioError::Rejected(_))
        ));
    }
}
