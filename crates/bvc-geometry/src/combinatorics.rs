//! Small combinatorial helpers: combinations, partitions into a fixed number
//! of non-empty blocks, and binomial coefficients.
//!
//! These back the enumeration of the subsets `T ⊆ Y, |T| = |Y| − f` in the
//! safe-area operator `Γ` (equation (1)) and the brute-force search for
//! Tverberg partitions (Theorem 2).

/// All `k`-element subsets of `{0, 1, …, n-1}` in lexicographic order.
///
/// Returns an empty list when `k > n`; returns the single empty subset when
/// `k == 0`.  Callers that do not need every subset at once should prefer the
/// streaming [`Combinations`] iterator, which yields the same sequence
/// without materialising it.
pub fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    if k == 0 {
        return vec![Vec::new()];
    }
    let mut result = Vec::with_capacity(binomial(n, k).min(1 << 20) as usize);
    let mut iter = Combinations::new(n, k);
    while let Some(current) = iter.next_ref() {
        result.push(current.to_vec());
    }
    result
}

/// A streaming enumerator of the `k`-element subsets of `{0, …, n-1}` in
/// lexicographic order — the subset stream behind the lazy safe-area
/// operator, which must *not* materialise all `C(n, k)` index lists (or their
/// hulls) up front.
///
/// Yields nothing when `k > n` or `k == 0` (the materialising
/// [`combinations`] keeps its historical "single empty subset" behaviour for
/// `k == 0`).
#[derive(Debug, Clone)]
pub struct Combinations {
    n: usize,
    k: usize,
    current: Vec<usize>,
    started: bool,
    done: bool,
}

impl Combinations {
    /// Creates the enumerator of `k`-subsets of `{0, …, n-1}`.
    pub fn new(n: usize, k: usize) -> Self {
        Self {
            n,
            k,
            current: (0..k).collect(),
            started: false,
            done: k > n || k == 0,
        }
    }

    /// Advances to the next combination and returns it as a borrowed slice
    /// (allocation-free; the slice is invalidated by the next call).
    pub fn next_ref(&mut self) -> Option<&[usize]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(&self.current);
        }
        // Advance to the next combination in lexicographic order.
        let (n, k) = (self.n, self.k);
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                return None;
            }
            i -= 1;
            if self.current[i] != i + n - k {
                break;
            }
            if i == 0 {
                self.done = true;
                return None;
            }
        }
        self.current[i] += 1;
        for j in i + 1..k {
            self.current[j] = self.current[j - 1] + 1;
        }
        Some(&self.current)
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        self.next_ref().map(|s| s.to_vec())
    }
}

/// The `rank`-th (0-based) `k`-subset of `{0, …, n-1}` in lexicographic
/// order — the combinadic unranking that gives the parallel subset-hull
/// scanner random access into the combination stream: worker `w` can build
/// the hull of ordinal `o` without replaying ordinals `0..o`.  Returns
/// `None` when `k > n`, `k == 0`, or `rank ≥ C(n, k)`.
///
/// Agreement with the streamed order is pinned by test:
/// `unrank_combination(n, k, o)` equals the `o`-th output of
/// [`Combinations::new(n, k)`](Combinations) for every ordinal.
pub fn unrank_combination(n: usize, k: usize, rank: u128) -> Option<Vec<usize>> {
    if k > n || k == 0 || rank >= binomial(n, k) {
        return None;
    }
    let mut result = Vec::with_capacity(k);
    let mut remaining = rank;
    let mut next = 0usize;
    for position in 0..k {
        // The number of combinations that keep `next` at position `position`
        // is C(n - next - 1, k - position - 1); skip values of `next` whose
        // whole block lies before `rank`.
        loop {
            let block = binomial(n - next - 1, k - position - 1);
            if remaining < block {
                break;
            }
            remaining -= block;
            next += 1;
        }
        result.push(next);
        next += 1;
    }
    Some(result)
}

/// The binomial coefficient `C(n, k)` computed in `u128` to avoid overflow for
/// the parameter ranges the experiments sweep, saturating at `u128::MAX`.
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result.saturating_mul((n - i) as u128) / (i as u128 + 1);
    }
    result
}

/// All partitions of `{0, …, n-1}` into exactly `blocks` non-empty unordered
/// blocks.  Each partition is a `Vec` of blocks, each block a sorted `Vec` of
/// indices; the blocks are ordered by their smallest element, which
/// canonicalises the unordered partition.
///
/// The number of such partitions is the Stirling number of the second kind
/// `S(n, blocks)`; callers are expected to keep `n` small (the Tverberg
/// brute-force search only runs on the multisets of size `(d+1)f + 1` that the
/// experiments use).
pub fn partitions_into_blocks(n: usize, blocks: usize) -> Vec<Vec<Vec<usize>>> {
    if blocks == 0 || blocks > n {
        return Vec::new();
    }
    let mut result = Vec::new();
    // assignment[i] = block index of element i; canonical form requires that
    // element 0 is in block 0 and each new block index is introduced in order.
    let mut assignment = vec![0usize; n];
    fn recurse(
        i: usize,
        used_blocks: usize,
        n: usize,
        blocks: usize,
        assignment: &mut Vec<usize>,
        result: &mut Vec<Vec<Vec<usize>>>,
    ) {
        if i == n {
            if used_blocks == blocks {
                let mut parts = vec![Vec::new(); blocks];
                for (elem, &b) in assignment.iter().enumerate() {
                    parts[b].push(elem);
                }
                result.push(parts);
            }
            return;
        }
        // Not enough remaining elements to populate the blocks still unopened.
        if blocks - used_blocks > n - i {
            return;
        }
        for b in 0..used_blocks.min(blocks) {
            assignment[i] = b;
            recurse(i + 1, used_blocks, n, blocks, assignment, result);
        }
        if used_blocks < blocks {
            assignment[i] = used_blocks;
            recurse(i + 1, used_blocks + 1, n, blocks, assignment, result);
        }
    }
    recurse(0, 0, n, blocks, &mut assignment, &mut result);
    result
}

/// The Stirling number of the second kind `S(n, k)`: the number of ways to
/// partition an `n`-element set into `k` non-empty blocks.  Saturates at
/// `u128::MAX`.
pub fn stirling_second(n: usize, k: usize) -> u128 {
    if k == 0 {
        return u128::from(n == 0);
    }
    if k > n {
        return 0;
    }
    // Dynamic programming: S(n, k) = k*S(n-1, k) + S(n-1, k-1).
    let mut row = vec![0u128; k + 1];
    row[0] = 1; // S(0, 0)
    for i in 1..=n {
        let mut next = vec![0u128; k + 1];
        for j in 1..=k.min(i) {
            next[j] = (j as u128)
                .saturating_mul(row[j])
                .saturating_add(row[j - 1]);
        }
        row = next;
        row[0] = 0;
    }
    row[k]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinations_basic_counts() {
        assert_eq!(combinations(4, 2).len(), 6);
        assert_eq!(combinations(5, 5).len(), 1);
        assert_eq!(combinations(5, 0), vec![Vec::<usize>::new()]);
        assert_eq!(combinations(3, 4).len(), 0);
    }

    #[test]
    fn combinations_are_lexicographic_and_distinct() {
        let combos = combinations(5, 3);
        assert_eq!(combos.first().unwrap(), &vec![0, 1, 2]);
        assert_eq!(combos.last().unwrap(), &vec![2, 3, 4]);
        let mut sorted = combos.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), combos.len());
    }

    #[test]
    fn unranking_agrees_with_the_streamed_order() {
        for n in 1..=9 {
            for k in 1..=n {
                for (ordinal, streamed) in Combinations::new(n, k).enumerate() {
                    assert_eq!(
                        unrank_combination(n, k, ordinal as u128).as_deref(),
                        Some(streamed.as_slice()),
                        "n={n}, k={k}, ordinal={ordinal}"
                    );
                }
                assert_eq!(unrank_combination(n, k, binomial(n, k)), None);
            }
        }
        assert_eq!(unrank_combination(3, 5, 0), None);
        assert_eq!(unrank_combination(4, 0, 0), None);
    }

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(7, 2), 21);
        assert_eq!(binomial(10, 5), 252);
        assert_eq!(binomial(4, 0), 1);
        assert_eq!(binomial(3, 5), 0);
        assert_eq!(binomial(20, 10), 184_756);
        assert_eq!(binomial(30, 15), 155_117_520);
    }

    #[test]
    fn streaming_combinations_match_materialised() {
        for n in 0..=8 {
            for k in 1..=n {
                let streamed: Vec<Vec<usize>> = Combinations::new(n, k).collect();
                assert_eq!(streamed, combinations(n, k), "n={n}, k={k}");
            }
        }
        assert_eq!(Combinations::new(3, 5).count(), 0);
        assert_eq!(Combinations::new(4, 0).count(), 0);
    }

    #[test]
    fn next_ref_streams_without_allocating_new_lists() {
        let mut iter = Combinations::new(4, 2);
        let mut seen = Vec::new();
        while let Some(s) = iter.next_ref() {
            seen.push(s.to_vec());
        }
        assert_eq!(seen.len(), 6);
        assert_eq!(seen.first().unwrap(), &vec![0, 1]);
        assert_eq!(seen.last().unwrap(), &vec![2, 3]);
        // Exhausted iterators stay exhausted.
        assert!(iter.next_ref().is_none());
    }

    #[test]
    fn combination_count_matches_binomial() {
        for n in 1..=8 {
            for k in 1..=n {
                assert_eq!(combinations(n, k).len() as u128, binomial(n, k));
            }
        }
    }

    #[test]
    fn partitions_counts_match_stirling() {
        for n in 1..=7 {
            for k in 1..=n {
                assert_eq!(
                    partitions_into_blocks(n, k).len() as u128,
                    stirling_second(n, k),
                    "S({n},{k})"
                );
            }
        }
    }

    #[test]
    fn stirling_known_values() {
        assert_eq!(stirling_second(7, 3), 301);
        assert_eq!(stirling_second(5, 2), 15);
        assert_eq!(stirling_second(4, 4), 1);
        assert_eq!(stirling_second(0, 0), 1);
        assert_eq!(stirling_second(3, 5), 0);
    }

    #[test]
    fn partitions_blocks_are_nonempty_and_cover() {
        for partition in partitions_into_blocks(6, 3) {
            assert_eq!(partition.len(), 3);
            let mut all: Vec<usize> = partition.iter().flatten().copied().collect();
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
            assert!(partition.iter().all(|b| !b.is_empty()));
        }
    }

    #[test]
    fn partitions_degenerate_cases() {
        assert!(partitions_into_blocks(3, 0).is_empty());
        assert!(partitions_into_blocks(2, 3).is_empty());
        assert_eq!(partitions_into_blocks(3, 1).len(), 1);
        assert_eq!(partitions_into_blocks(3, 3).len(), 1);
    }
}
