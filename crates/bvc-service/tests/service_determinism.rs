//! The service's two determinism contracts:
//!
//! 1. The verdict stream is **byte-identical** for every worker count and
//!    batch size — the reorder buffer restores admission order and lines
//!    carry no timing, so scheduling cannot leak into the output.
//! 2. Sharing the Γ cache across instances is **observationally
//!    transparent** — the shared-parent and cold-cache streams decide
//!    identically (a cached safe-area answer is bit-identical to a
//!    recomputed one).

use bvc_core::{InstanceOverrides, ProtocolKind, RunConfig};
use bvc_geometry::Point;
use bvc_service::{BvcService, CacheMode, MemorySink, ServiceConfig};
use proptest::prelude::*;

/// A mixed-strategy restricted-sync stream: seeds cycle so the shared
/// cache has cross-instance repeats to hit, strategies rotate so the
/// stream is not one instance repeated.
fn stream(instances: usize, seed_cycle: u64) -> ServiceConfig {
    use bvc_adversary::ByzantineStrategy as S;
    let rotation = [
        S::Equivocate,
        S::AntiConvergence,
        S::Silent,
        S::FixedOutlier,
    ];
    let template = RunConfig::new(5, 1, 2).epsilon(0.1);
    let overrides = (0..instances)
        .map(|i| {
            let seed = if seed_cycle == 0 {
                i as u64
            } else {
                i as u64 % seed_cycle
            };
            InstanceOverrides {
                seed,
                honest_inputs: Some(
                    (0..4)
                        .map(|p| {
                            Point::new(vec![
                                (seed as f64 * 0.31 + p as f64 * 0.17) % 1.0,
                                (seed as f64 * 0.47 + p as f64 * 0.13) % 1.0,
                            ])
                        })
                        .collect(),
                ),
                adversary: Some(rotation[i % rotation.len()]),
                validity: None,
            }
        })
        .collect();
    ServiceConfig::new(ProtocolKind::RestrictedSync, template)
        .instances(overrides)
        .label("determinism")
}

fn run_stream(config: ServiceConfig) -> Vec<String> {
    let mut sink = MemorySink::new();
    BvcService::new(config)
        .expect("stream admits")
        .run(&mut sink)
        .expect("memory sink cannot fail");
    sink.into_lines()
}

#[test]
fn verdict_stream_is_byte_identical_across_worker_counts_and_batches() {
    let reference = run_stream(stream(40, 8).workers(1).batch(64));
    assert_eq!(reference.len(), 40);
    for workers in [2usize, 8] {
        for batch in [1usize, 7, 64] {
            let lines = run_stream(stream(40, 8).workers(workers).batch(batch));
            assert_eq!(
                lines, reference,
                "stream differs at workers = {workers}, batch = {batch}"
            );
        }
    }
}

#[test]
fn shared_cache_hits_across_instances_without_changing_the_stream() {
    let shared_config = stream(24, 4).workers(4).cache_mode(CacheMode::Shared);
    let mut sink = MemorySink::new();
    let stats = BvcService::new(shared_config)
        .unwrap()
        .run(&mut sink)
        .unwrap();
    assert!(
        stats.cache.shared_hits > 0,
        "seed cycling must produce cross-instance hits: {:?}",
        stats.cache
    );
    let cold = run_stream(stream(24, 4).workers(4).cache_mode(CacheMode::PerInstance));
    assert_eq!(
        sink.into_lines(),
        cold,
        "cache sharing leaked into verdicts"
    );
}

proptest! {
    // End-to-end streams are expensive; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Shared-parent and cold-cache services decide identically for any
    /// stream shape the generator produces: cached Γ answers are
    /// bit-identical to recomputed ones, so cache topology can never leak
    /// into a verdict.
    #[test]
    fn shared_and_cold_cache_streams_decide_identically(
        instances in 2usize..14,
        seed_cycle in 0u64..5,
        workers in 1usize..5,
        batch in 1usize..9,
    ) {
        let shared = run_stream(
            stream(instances, seed_cycle)
                .workers(workers)
                .batch(batch)
                .cache_mode(CacheMode::Shared),
        );
        let cold = run_stream(
            stream(instances, seed_cycle)
                .workers(workers)
                .batch(batch)
                .cache_mode(CacheMode::PerInstance),
        );
        prop_assert_eq!(shared, cold);
    }
}
