//! Exact Byzantine vector consensus on arbitrary **directed** graphs
//! (Tseng & Vaidya, arXiv:1208.5075), and its local-broadcast variant
//! (Khan, Tseng & Vaidya, arXiv:1911.07298).
//!
//! The complete-graph protocol of Section 2.2 assumes every process can
//! broadcast to every other; on an arbitrary digraph that assumption fails
//! and solvability is governed by a graph condition instead of a closed-form
//! bound ([`Topology::directed_exact_sufficiency`] /
//! [`Topology::directed_exact_lb_sufficiency`]).  This module provides the
//! runnable protocol for that setting:
//!
//! 1. **Dissemination by flooding.**  Every process claims its input and
//!    relays every *fresh* claim it learns to its out-neighbors, tagged with
//!    the claimed source.  After `n` relay rounds every claim known to an
//!    honest process has reached every honest process it can reach.
//! 2. **Deterministic resolution.**  Each process resolves every source to
//!    the lexicographically smallest claim it holds for that source (total
//!    order via `f64::total_cmp`, so resolution is bit-deterministic and
//!    order-independent), defaulting claim-less sources to the lower-bound
//!    corner, and decides a point of `Γ(S)` over the resolved multiset with
//!    the same [`decision_point`] rule as the complete-graph protocol.
//!
//! Under **local broadcast** the network canonicalises every send batch
//! (`bvc_net::enforce_local_broadcast`), so a Byzantine process cannot give
//! two out-neighbors different claims in the same round — the model
//! divergence the two papers prove shows up directly as verdict divergence
//! on graphs that satisfy the LB condition but violate the point-to-point
//! one.
//!
//! **Scope.** The flood-and-resolve schedule is simulation-grade, not a
//! verbatim reproduction of the papers' committee constructions: a Byzantine
//! process may forge claims *for honest sources* when relaying, and a claim
//! injected in the final relay round reaches only the injector's direct
//! out-neighbors.  Runs where such attacks break agreement are exactly what
//! the verdict scoring and the recorded sufficiency condition are for — a
//! failed verdict on a condition-violating graph is data, not a bug (and the
//! chaos engine's job is to find the ones on condition-satisfying graphs).
//! On complete graphs the driver delegates to the real Section-2.2 protocol,
//! so the `K_n` behaviour is the paper's, byte-for-byte.

use crate::config::BvcConfig;
use bvc_adversary::PointForge;
use bvc_geometry::relaxed::decision_point;
use bvc_geometry::{Point, PointMultiset, SharedGammaCache, ValidityPredicate};
use bvc_net::{Delivery, Outgoing, ProcessId, SyncProcess};
use bvc_topology::Topology;
use std::sync::Arc;

/// Message of the directed flood protocol: one claim, tagged with the
/// process it is claimed **for** (not necessarily the sender — honest
/// processes relay claims verbatim).
#[derive(Debug, Clone, PartialEq)]
pub struct DirectedMsg {
    /// The process this claim attributes an input to.
    pub source: usize,
    /// The claimed input vector.
    pub point: Point,
}

/// Honest process of the directed exact-BVC protocol.
pub struct DirectedExactProcess {
    config: BvcConfig,
    me: usize,
    topology: Arc<Topology>,
    /// Per-source claim sets, deduplicated by bit-equality, in arrival
    /// order.  A Byzantine relayer can grow an honest source's set beyond
    /// one entry; resolution picks the lexicographic minimum.
    claims: Vec<Vec<Point>>,
    /// Claims learned this round and not yet relayed.
    fresh: Vec<DirectedMsg>,
    decision: Option<Point>,
    gamma_cache: Option<SharedGammaCache>,
    validity: ValidityPredicate,
}

impl DirectedExactProcess {
    /// Creates the honest process with index `me` and input vector `input`
    /// on `topology`.
    ///
    /// # Panics
    ///
    /// Panics if `me >= config.n`, `input.dim() != config.d`, or the
    /// topology covers a different number of processes.
    pub fn new(config: BvcConfig, me: usize, input: Point, topology: Arc<Topology>) -> Self {
        assert!(me < config.n, "process index {me} out of range");
        assert_eq!(input.dim(), config.d, "input dimension must equal config.d");
        assert_eq!(
            topology.len(),
            config.n,
            "topology size must equal config.n"
        );
        let mut claims: Vec<Vec<Point>> = vec![Vec::new(); config.n];
        claims[me].push(input.clone());
        Self {
            config,
            me,
            topology,
            claims,
            fresh: vec![DirectedMsg {
                source: me,
                point: input,
            }],
            decision: None,
            gamma_cache: None,
            validity: ValidityPredicate::Strict,
        }
    }

    /// Selects the validity regime of the resolution-step decision rule,
    /// mirroring [`ExactBvcProcess::with_validity_mode`]
    /// (`crate::exact::ExactBvcProcess::with_validity_mode`).
    pub fn with_validity_mode(mut self, mode: ValidityPredicate) -> Self {
        self.validity = mode;
        self
    }

    /// Shares a Γ cache: processes that resolve the same multiset compute
    /// the decision point once system-wide, exactly like the complete-graph
    /// protocol.
    pub fn with_gamma_cache(mut self, cache: SharedGammaCache) -> Self {
        self.gamma_cache = Some(cache);
        self
    }

    /// Number of synchronous rounds until the decision is available: `n`
    /// relay rounds (any claim an honest process holds crosses the ≤ n − 1
    /// remaining hops) plus one closing round.
    pub fn total_rounds(config: &BvcConfig) -> usize {
        config.n + 1
    }

    /// The claims currently held for `source`, in arrival order.
    pub fn claims_for(&self, source: usize) -> &[Point] {
        &self.claims[source]
    }

    /// Ingests one delivered claim; returns `true` when it was new.
    fn ingest(&mut self, msg: &DirectedMsg) -> bool {
        if msg.source >= self.claims.len() || msg.point.dim() != self.config.d {
            return false;
        }
        let known = self.claims[msg.source]
            .iter()
            .any(|p| p.coords() == msg.point.coords());
        if known {
            return false;
        }
        self.claims[msg.source].push(msg.point.clone());
        true
    }

    /// Resolves every source to its lexicographically smallest claim
    /// (`f64::total_cmp` per coordinate, so ties and NaN payloads still
    /// order deterministically), defaulting claim-less sources to the
    /// lower-bound corner, and decides over the resolved multiset.
    fn conclude(&mut self) {
        let default = Point::uniform(self.config.d, self.config.lower_bound);
        let points: Vec<Point> = self
            .claims
            .iter()
            .map(|set| {
                set.iter()
                    .min_by(|a, b| lex_cmp(a, b))
                    .cloned()
                    .unwrap_or_else(|| default.clone())
            })
            .collect();
        let multiset = PointMultiset::new(points);
        self.decision = match &self.gamma_cache {
            Some(cache) => cache.decision_point(&multiset, self.config.f, &self.validity),
            None => decision_point(&multiset, self.config.f, &self.validity),
        };
    }
}

/// Lexicographic order on coordinate vectors via `f64::total_cmp`.
fn lex_cmp(a: &Point, b: &Point) -> std::cmp::Ordering {
    a.coords()
        .iter()
        .zip(b.coords())
        .map(|(x, y)| x.total_cmp(y))
        .find(|o| o.is_ne())
        .unwrap_or(std::cmp::Ordering::Equal)
}

impl SyncProcess for DirectedExactProcess {
    type Msg = DirectedMsg;
    type Output = Point;

    fn round(
        &mut self,
        round: usize,
        inbox: &[Delivery<DirectedMsg>],
    ) -> Vec<Outgoing<DirectedMsg>> {
        for delivery in inbox {
            let msg = delivery.msg.clone();
            if self.ingest(&msg) {
                self.fresh.push(msg);
            }
        }
        if round >= Self::total_rounds(&self.config) {
            self.conclude();
            return Vec::new();
        }
        let fresh = std::mem::take(&mut self.fresh);
        let mut out = Vec::new();
        for msg in fresh {
            for &to in self.topology.out_neighbors(self.me) {
                out.push(Outgoing::new(ProcessId::new(to), msg.clone()));
            }
        }
        out
    }

    fn output(&self) -> Option<Point> {
        self.decision.clone()
    }

    // Like exact consensus: no converging round state, the traced spread
    // collapses in the closing round where the decision appears.
    fn trace_state(&self) -> Option<Vec<f64>> {
        self.decision.as_ref().map(|p| p.coords().to_vec())
    }
}

/// A Byzantine participant of the directed protocol: runs the honest flood
/// schedule internally and forges the claimed point of every message it
/// relays according to a [`PointForge`] strategy (per-receiver under
/// point-to-point; the local-broadcast executor canonicalises the batch so
/// per-receiver equivocation dies on the wire), or stays silent when the
/// strategy says so.
pub struct ByzantineDirectedProcess {
    inner: DirectedExactProcess,
    forge: PointForge,
}

impl ByzantineDirectedProcess {
    /// Creates a Byzantine process with the given forge.  The inner honest
    /// skeleton floods the forge-independent nominal input so the relay
    /// schedule stays well-formed.
    pub fn new(
        config: BvcConfig,
        me: usize,
        nominal_input: Point,
        topology: Arc<Topology>,
        forge: PointForge,
    ) -> Self {
        Self {
            inner: DirectedExactProcess::new(config, me, nominal_input, topology),
            forge,
        }
    }
}

impl SyncProcess for ByzantineDirectedProcess {
    type Msg = DirectedMsg;
    type Output = Point;

    fn round(
        &mut self,
        round: usize,
        inbox: &[Delivery<DirectedMsg>],
    ) -> Vec<Outgoing<DirectedMsg>> {
        let honest = self.inner.round(round, inbox);
        let mut forged = Vec::with_capacity(honest.len());
        for mut outgoing in honest {
            match self.forge.forge(round, outgoing.to.index()) {
                Some(point) => {
                    outgoing.msg.point = point;
                    forged.push(outgoing);
                }
                None => {
                    // Strategy says: send nothing to this receiver this round.
                }
            }
        }
        forged
    }

    fn output(&self) -> Option<Point> {
        // A Byzantine process's output is irrelevant to the problem statement.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvc_adversary::ByzantineStrategy;
    use bvc_net::SyncNetwork;

    fn config(n: usize, f: usize, d: usize) -> BvcConfig {
        BvcConfig::new(n, f, d).unwrap()
    }

    /// The committed divergence digraph (scenarios/directed_divergence.toml):
    /// two directed 4-cliques bridged by an undirected perfect matching.
    fn divergence_digraph() -> Topology {
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for base in [0usize, 4] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    edges.push((base + i, base + j));
                }
            }
        }
        for i in 0..4 {
            edges.push((i, i + 4));
        }
        Topology::from_edges(8, &edges, true).unwrap()
    }

    fn run_directed(
        topology: Topology,
        f: usize,
        d: usize,
        honest_inputs: Vec<Point>,
        strategy: ByzantineStrategy,
        seed: u64,
        local_broadcast: bool,
    ) -> Vec<Option<Point>> {
        let n = topology.len();
        assert_eq!(honest_inputs.len(), n - f);
        let cfg = config(n, f, d);
        let topology = Arc::new(topology);
        let mut processes: Vec<Box<dyn SyncProcess<Msg = DirectedMsg, Output = Point>>> =
            Vec::new();
        for (i, input) in honest_inputs.iter().enumerate() {
            processes.push(Box::new(DirectedExactProcess::new(
                cfg.clone(),
                i,
                input.clone(),
                Arc::clone(&topology),
            )));
        }
        for b in 0..f {
            let me = n - f + b;
            let mut forge = PointForge::new(
                strategy,
                d,
                cfg.lower_bound,
                cfg.upper_bound,
                seed + b as u64,
            );
            forge.set_honest_value(Point::uniform(d, 0.5));
            processes.push(Box::new(ByzantineDirectedProcess::new(
                cfg.clone(),
                me,
                Point::uniform(d, cfg.lower_bound),
                Arc::clone(&topology),
                forge,
            )));
        }
        let honest: Vec<usize> = (0..n - f).collect();
        SyncNetwork::new(processes, DirectedExactProcess::total_rounds(&cfg))
            .with_topology(topology.as_ref().clone())
            .with_local_broadcast(local_broadcast)
            .run(&honest)
            .outputs
    }

    fn assert_agreement(outputs: &[Option<Point>], honest: usize) {
        let decisions: Vec<&Point> = outputs[..honest]
            .iter()
            .map(|o| o.as_ref().expect("honest process must decide"))
            .collect();
        for pair in decisions.windows(2) {
            assert!(
                pair[0].approx_eq(pair[1], 1e-7),
                "agreement violated: {} vs {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn fault_free_flood_decides_on_a_ring() {
        // f = 0 on a directed-reachable ring: every claim floods everywhere
        // within n rounds and all processes resolve the identical multiset.
        let inputs: Vec<Point> = (0..5).map(|i| Point::new(vec![i as f64 / 4.0])).collect();
        let outputs = run_directed(
            Topology::ring(5),
            0,
            1,
            inputs,
            ByzantineStrategy::Benign,
            1,
            false,
        );
        assert_agreement(&outputs, 5);
    }

    #[test]
    fn crash_adversary_on_the_divergence_digraph_decides_under_local_broadcast() {
        let inputs: Vec<Point> = (0..7)
            .map(|i| Point::new(vec![i as f64 / 6.0, (6 - i) as f64 / 6.0]))
            .collect();
        let outputs = run_directed(
            divergence_digraph(),
            1,
            2,
            inputs,
            ByzantineStrategy::Crash(1),
            3,
            true,
        );
        assert_agreement(&outputs, 7);
    }

    #[test]
    fn same_seed_runs_are_bit_identical() {
        let inputs: Vec<Point> = (0..7)
            .map(|i| Point::new(vec![i as f64 / 6.0, i as f64 / 7.0]))
            .collect();
        let a = run_directed(
            divergence_digraph(),
            1,
            2,
            inputs.clone(),
            ByzantineStrategy::Crash(2),
            9,
            true,
        );
        let b = run_directed(
            divergence_digraph(),
            1,
            2,
            inputs,
            ByzantineStrategy::Crash(2),
            9,
            true,
        );
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (Some(p), Some(q)) => assert_eq!(p.coords(), q.coords()),
                (None, None) => {}
                other => panic!("termination diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn silent_byzantine_source_resolves_to_the_default_corner() {
        let inputs: Vec<Point> = (0..7)
            .map(|i| Point::new(vec![0.4 + i as f64 / 50.0, 0.5]))
            .collect();
        let outputs = run_directed(
            divergence_digraph(),
            1,
            2,
            inputs,
            ByzantineStrategy::Silent,
            5,
            false,
        );
        // The silent source contributes no claim anywhere; every honest
        // process resolves it to the same default, so agreement holds and
        // the decision stays near the honest cluster (f = 1 outlier is
        // trimmed by Γ).
        assert_agreement(&outputs, 7);
        let decision = outputs[0].as_ref().unwrap();
        assert!(
            decision.coords()[0] > 0.3,
            "decision {decision} left the honest hull"
        );
    }

    #[test]
    fn relays_preserve_the_claimed_source() {
        // On a directed path 0 → 1 → 2, process 2 only hears process 0's
        // claim through 1's relay — the claim must still be attributed to 0.
        let path = Topology::from_edges(3, &[(0, 1), (1, 2), (2, 0)], false).unwrap();
        let cfg = config(3, 0, 1);
        let topology = Arc::new(path);
        let mut processes: Vec<Box<dyn SyncProcess<Msg = DirectedMsg, Output = Point>>> =
            Vec::new();
        for i in 0..3 {
            processes.push(Box::new(DirectedExactProcess::new(
                cfg.clone(),
                i,
                Point::new(vec![i as f64 / 2.0]),
                Arc::clone(&topology),
            )));
        }
        let outcome = SyncNetwork::new(processes, DirectedExactProcess::total_rounds(&cfg))
            .with_topology(topology.as_ref().clone())
            .run(&[0, 1, 2]);
        assert!(outcome.outputs.iter().all(|o| o.is_some()));
        assert_agreement(&outcome.outputs, 3);
    }

    #[test]
    fn total_rounds_is_n_plus_one() {
        assert_eq!(DirectedExactProcess::total_rounds(&config(8, 1, 2)), 9);
    }

    #[test]
    fn lex_resolution_is_order_independent() {
        let cfg = config(3, 0, 2);
        let t = Arc::new(Topology::complete(3));
        let mut a =
            DirectedExactProcess::new(cfg.clone(), 0, Point::new(vec![0.9, 0.9]), t.clone());
        let mut b = DirectedExactProcess::new(cfg, 0, Point::new(vec![0.9, 0.9]), t);
        let claims = [
            DirectedMsg {
                source: 1,
                point: Point::new(vec![0.5, 0.1]),
            },
            DirectedMsg {
                source: 1,
                point: Point::new(vec![0.5, 0.0]),
            },
            DirectedMsg {
                source: 2,
                point: Point::new(vec![0.2, 0.2]),
            },
        ];
        for msg in &claims {
            a.ingest(msg);
        }
        for msg in claims.iter().rev() {
            b.ingest(msg);
        }
        a.conclude();
        b.conclude();
        assert_eq!(
            a.decision.as_ref().map(|p| p.coords().to_vec()),
            b.decision.as_ref().map(|p| p.coords().to_vec()),
            "resolution must not depend on claim arrival order"
        );
    }
}
