//! Counterexample shrinking: minimize a violating genome while preserving
//! the violation.
//!
//! The shrinker is **rng-free and deterministic**: it applies a fixed
//! sequence of reduction passes — drop fault events, halve fault windows,
//! round input coordinates, canonicalise α / seed / strategy / delivery,
//! shed processes — keeping a reduction only if the reduced genome still
//! produces a *genuine* violation with the **same verdict flags** as the
//! original.  Passes repeat to a fixpoint, which is what makes shrinking
//! idempotent: re-shrinking a shrunk genome changes nothing (pinned by the
//! property tests).

use crate::genome::{ChaosGenome, ValidityGene};
use crate::objective::evaluate;

/// The result of shrinking one violating genome.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized genome (equal to the input when nothing reduced).
    pub genome: ChaosGenome,
    /// The accepted reduction steps, in application order — deterministic
    /// for a deterministic input.
    pub steps: Vec<String>,
    /// Genome evaluations spent shrinking.
    pub evaluations: usize,
}

/// Whether `genome` still exhibits the original violation: a genuine
/// violation whose verdict flags match `flags` exactly.
fn preserves(genome: &ChaosGenome, flags: (bool, bool, bool), evaluations: &mut usize) -> bool {
    *evaluations += 1;
    let eval = evaluate(genome);
    eval.violation && eval.verdict_flags() == flags
}

/// Rounds `x` to `decimals` decimal places.
fn round_to(x: f64, decimals: u32) -> f64 {
    let scale = 10f64.powi(decimals as i32);
    (x * scale).round() / scale
}

/// Shrinks `genome`, which must currently violate with verdict `flags`
/// (from [`Evaluation::verdict_flags`](crate::objective::Evaluation::verdict_flags)).
pub fn shrink(genome: &ChaosGenome, flags: (bool, bool, bool)) -> ShrinkResult {
    let mut best = genome.clone();
    let mut steps = Vec::new();
    let mut evaluations = 0usize;

    // Each pass returns true if it changed the genome; the outer loop runs
    // the whole pass list to a fixpoint (bounded, since every accepted
    // reduction strictly simplifies the genome).
    for _round in 0..8 {
        let mut changed = false;

        // Pass 1: drop fault events one at a time.
        let mut i = 0;
        while i < best.faults.len() {
            let mut candidate = best.clone();
            candidate.faults.remove(i);
            if preserves(&candidate, flags, &mut evaluations) {
                best = candidate;
                steps.push(format!("drop-fault:{i}"));
                changed = true;
            } else {
                i += 1;
            }
        }

        // Pass 2: halve remaining fault windows and delays.
        for i in 0..best.faults.len() {
            let fault = best.faults[i];
            if fault.duration > 1 || fault.extra > 1 {
                let mut candidate = best.clone();
                candidate.faults[i].duration = (fault.duration / 2).max(1);
                candidate.faults[i].extra = (fault.extra / 2).max(1);
                if preserves(&candidate, flags, &mut evaluations) {
                    best = candidate;
                    steps.push(format!("halve-window:{i}"));
                    changed = true;
                }
            }
        }

        // Pass 3: round every input coordinate (coarse first).
        for decimals in [1u32, 2] {
            let rounded: Vec<Vec<f64>> = best
                .points
                .iter()
                .map(|p| p.iter().map(|c| round_to(*c, decimals)).collect())
                .collect();
            if rounded != best.points {
                let mut candidate = best.clone();
                candidate.points = rounded;
                if preserves(&candidate, flags, &mut evaluations) {
                    best = candidate;
                    steps.push(format!("round-inputs:{decimals}"));
                    changed = true;
                    break;
                }
            }
        }

        // Pass 4: round α (coarse first).
        if let ValidityGene::Alpha(alpha) = best.validity {
            for decimals in [1u32, 2] {
                let rounded = round_to(alpha, decimals);
                if rounded != alpha {
                    let mut candidate = best.clone();
                    candidate.validity = ValidityGene::Alpha(rounded);
                    if preserves(&candidate, flags, &mut evaluations) {
                        best = candidate;
                        steps.push(format!("round-alpha:{decimals}"));
                        changed = true;
                        break;
                    }
                }
            }
        }

        // Pass 5: canonical seed.
        if best.seed != 0 {
            let mut candidate = best.clone();
            candidate.seed = 0;
            if preserves(&candidate, flags, &mut evaluations) {
                best = candidate;
                steps.push("zero-seed".to_string());
                changed = true;
            }
        }

        // Pass 6: default delivery schedule.
        if best.round_robin {
            let mut candidate = best.clone();
            candidate.round_robin = false;
            if preserves(&candidate, flags, &mut evaluations) {
                best = candidate;
                steps.push("default-delivery".to_string());
                changed = true;
            }
        }

        // Pass 7: canonical strategy (equivocation is the zoo's default).
        if best.strategy != "equivocate" {
            let mut candidate = best.clone();
            candidate.strategy = "equivocate".to_string();
            if preserves(&candidate, flags, &mut evaluations) {
                best = candidate;
                steps.push("canonical-strategy".to_string());
                changed = true;
            }
        }

        // Pass 8: drop the declared topology — a directed finding that
        // still reproduces on the complete graph is the simpler reproducer
        // (and usually a deeper one: it survived losing its cut structure).
        if best.topology.is_some() {
            let mut candidate = best.clone();
            candidate.topology = None;
            if preserves(&candidate, flags, &mut evaluations) {
                best = candidate;
                steps.push("drop-topology".to_string());
                changed = true;
            }
        }

        // Pass 9: shed processes (dropping the last honest input point).
        while best.n > best.f + 2 {
            let mut candidate = best.clone();
            candidate.n -= 1;
            candidate.points.truncate(candidate.n - candidate.f);
            if preserves(&candidate, flags, &mut evaluations) {
                best = candidate;
                steps.push("shrink-n".to_string());
                changed = true;
            } else {
                break;
            }
        }

        // Pass 10: fewer Byzantine processes (honest inputs are kept, so
        // the freed id becomes an extra honest process only if a point
        // exists for it — instead we shrink n in lockstep to keep shape).
        if best.f > 1 {
            let mut candidate = best.clone();
            candidate.f -= 1;
            candidate.n -= 1;
            if preserves(&candidate, flags, &mut evaluations) {
                best = candidate;
                steps.push("shrink-f".to_string());
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    ShrinkResult {
        genome: best,
        steps,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounding_helper_is_exact_on_short_decimals() {
        assert_eq!(round_to(0.12345, 2), 0.12);
        assert_eq!(round_to(0.15, 1), 0.2);
        assert_eq!(round_to(0.5, 1), 0.5);
    }
}
