//! Deprecated per-protocol builder shims over the session API.
//!
//! These are the five hand-copied builders the [`BvcSession`] redesign
//! replaced, kept for **one release** so pre-session callers (and the
//! pre-change verdict-JSON pins) keep compiling.  Every shim is a thin
//! wrapper: the builder accumulates a [`RunConfig`] and `run()` delegates to
//! `BvcSession::new(kind, config)?.run()`, so the shims cannot drift from
//! the session behaviour.  New code must use [`BvcSession`] directly; the
//! workspace builds with `-D warnings`, so any new caller of a shim fails CI
//! unless it explicitly `allow(deprecated)`s itself — which only this module
//! and the shim-equivalence tests may do.
#![allow(deprecated)]

use super::config::{ProtocolKind, RunConfig};
use super::report::{RunReport, Verdict};
use super::BvcSession;
use crate::approx::{ApproxOutput, UpdateRule};
use crate::config::BvcError;
use crate::validity::{ValidityCheck, ValidityMode};
use bvc_adversary::ByzantineStrategy;
use bvc_geometry::Point;
use bvc_net::{DeliveryPolicy, ExecutionStats, FaultPlan};
use bvc_topology::{Sufficiency, Topology};

macro_rules! forward_setters {
    () => {
        /// Honest inputs, one per non-faulty process (`n − f` of them).
        pub fn honest_inputs(mut self, inputs: Vec<Point>) -> Self {
            self.config = self.config.honest_inputs(inputs);
            self
        }

        /// The Byzantine strategy of the last `f` processes.
        pub fn adversary(mut self, strategy: ByzantineStrategy) -> Self {
            self.config = self.config.adversary(strategy);
            self
        }

        /// Seed of all randomness in the execution.
        pub fn seed(mut self, seed: u64) -> Self {
            self.config = self.config.seed(seed);
            self
        }

        /// A-priori bounds on the input coordinates (defaults to `[0, 1]`).
        pub fn value_bounds(mut self, lower: f64, upper: f64) -> Self {
            self.config = self.config.value_bounds(lower, upper);
            self
        }

        /// Injected network faults.
        pub fn faults(mut self, faults: FaultPlan) -> Self {
            self.config = self.config.faults(faults);
            self
        }

        /// Restricts delivery to a declared topology (the complete graph is
        /// the default).
        pub fn topology(mut self, topology: Topology) -> Self {
            self.config = self.config.topology(topology);
            self
        }

        /// The validity condition the run is scored against (strict by
        /// default).
        pub fn validity_mode(mut self, mode: ValidityMode) -> Self {
            self.config = self.config.validity_mode(mode);
            self
        }
    };
}

macro_rules! forward_epsilon_setter {
    () => {
        /// The ε of ε-agreement (defaults to `0.01`).
        pub fn epsilon(mut self, epsilon: f64) -> Self {
            self.config = self.config.epsilon(epsilon);
            self
        }
    };
}

macro_rules! forward_async_setters {
    () => {
        /// The asynchronous scheduling adversary (defaults to
        /// [`DeliveryPolicy::RandomFair`]).
        pub fn delivery_policy(mut self, policy: DeliveryPolicy) -> Self {
            self.config = self.config.delivery_policy(policy);
            self
        }

        /// Cap on scheduler delivery steps (defaults to 5,000,000).
        pub fn max_steps(mut self, max_steps: usize) -> Self {
            self.config = self.config.max_steps(max_steps);
            self
        }
    };
}

// ---------------------------------------------------------------------------
// Exact BVC
// ---------------------------------------------------------------------------

/// Builder shim for an Exact BVC execution.
#[deprecated(
    since = "0.2.0",
    note = "the per-protocol builders are replaced by the session API: \
                  BvcSession::new(ProtocolKind::…, RunConfig::new(n, f, d)…) — see \
                  crates/bvc-core/README.md §Session API for the migration table"
)]
#[derive(Debug, Clone)]
pub struct ExactBvcRunBuilder {
    config: RunConfig,
}

impl ExactBvcRunBuilder {
    forward_setters!();

    /// Runs the execution through [`BvcSession`].
    ///
    /// # Errors
    ///
    /// The validation errors of [`RunConfig::validate`].
    pub fn run(self) -> Result<ExactBvcRun, BvcError> {
        Ok(ExactBvcRun {
            report: BvcSession::new(ProtocolKind::Exact, self.config)?.run(),
        })
    }
}

/// A completed Exact BVC execution (shim over [`RunReport`]).
#[deprecated(
    since = "0.2.0",
    note = "the per-protocol builders are replaced by the session API: \
                  BvcSession::new(ProtocolKind::…, RunConfig::new(n, f, d)…) — see \
                  crates/bvc-core/README.md §Session API for the migration table"
)]
#[derive(Debug, Clone)]
pub struct ExactBvcRun {
    report: RunReport,
}

impl ExactBvcRun {
    /// Starts building an execution with `n` processes, `f` Byzantine,
    /// inputs of dimension `d`.
    pub fn builder(n: usize, f: usize, d: usize) -> ExactBvcRunBuilder {
        ExactBvcRunBuilder {
            config: RunConfig::new(n, f, d),
        }
    }

    /// The unified report behind this shim.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// The honest processes' decisions (index = honest process index).
    pub fn decisions(&self) -> &[Point] {
        self.report.decisions()
    }

    /// The honest inputs the run was configured with.
    pub fn honest_inputs(&self) -> &[Point] {
        self.report.honest_inputs()
    }

    /// The verdict against Agreement / Validity / Termination.
    pub fn verdict(&self) -> &Verdict {
        self.report.verdict()
    }

    /// The validity mode the verdict was scored against, with its (possibly
    /// lowered) resource requirement.
    pub fn validity(&self) -> &ValidityCheck {
        self.report
            .validity()
            .expect("the exact protocol records a resource check")
    }

    /// Number of synchronous rounds executed.
    pub fn rounds(&self) -> usize {
        self.report.rounds()
    }

    /// Message statistics of the execution.
    pub fn stats(&self) -> &ExecutionStats {
        self.report.stats()
    }
}

// ---------------------------------------------------------------------------
// Approximate BVC
// ---------------------------------------------------------------------------

/// Builder shim for an Approximate BVC execution.
#[deprecated(
    since = "0.2.0",
    note = "the per-protocol builders are replaced by the session API: \
                  BvcSession::new(ProtocolKind::…, RunConfig::new(n, f, d)…) — see \
                  crates/bvc-core/README.md §Session API for the migration table"
)]
#[derive(Debug, Clone)]
pub struct ApproxBvcRunBuilder {
    config: RunConfig,
}

impl ApproxBvcRunBuilder {
    forward_setters!();
    forward_epsilon_setter!();
    forward_async_setters!();

    /// Which Step-2 subset rule to use (defaults to the Appendix F witness
    /// optimisation).
    pub fn update_rule(mut self, rule: UpdateRule) -> Self {
        self.config = self.config.update_rule(rule);
        self
    }

    /// Runs the execution through [`BvcSession`].
    ///
    /// # Errors
    ///
    /// The validation errors of [`RunConfig::validate`].
    pub fn run(self) -> Result<ApproxBvcRun, BvcError> {
        Ok(ApproxBvcRun {
            report: BvcSession::new(ProtocolKind::Approx, self.config)?.run(),
        })
    }
}

/// A completed Approximate BVC execution (shim over [`RunReport`]).
#[deprecated(
    since = "0.2.0",
    note = "the per-protocol builders are replaced by the session API: \
                  BvcSession::new(ProtocolKind::…, RunConfig::new(n, f, d)…) — see \
                  crates/bvc-core/README.md §Session API for the migration table"
)]
#[derive(Debug, Clone)]
pub struct ApproxBvcRun {
    report: RunReport,
}

impl ApproxBvcRun {
    /// Starts building an execution with `n` processes, `f` Byzantine,
    /// inputs of dimension `d`.
    pub fn builder(n: usize, f: usize, d: usize) -> ApproxBvcRunBuilder {
        ApproxBvcRunBuilder {
            config: RunConfig::new(n, f, d),
        }
    }

    /// The unified report behind this shim.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// The honest processes' decisions.
    pub fn decisions(&self) -> Vec<Point> {
        self.report.decisions().to_vec()
    }

    /// Full per-process outputs (decision, state history, `|Z_i|` sizes).
    pub fn outputs(&self) -> &[ApproxOutput] {
        self.report.outputs()
    }

    /// The honest inputs the run was configured with.
    pub fn honest_inputs(&self) -> &[Point] {
        self.report.honest_inputs()
    }

    /// The verdict against ε-Agreement / Validity / Termination.
    pub fn verdict(&self) -> &Verdict {
        self.report.verdict()
    }

    /// The validity mode the verdict was scored against, with its (possibly
    /// lowered) resource requirement.
    pub fn validity(&self) -> &ValidityCheck {
        self.report
            .validity()
            .expect("the approximate protocol records a resource check")
    }

    /// The static round budget of Step 3 for this configuration.
    pub fn round_budget(&self) -> usize {
        self.report
            .round_budget()
            .expect("the approximate protocol has a static budget")
    }

    /// The ε the run was judged against.
    pub fn epsilon(&self) -> f64 {
        self.report
            .epsilon()
            .expect("the approximate protocol is judged against ε")
    }

    /// Message statistics of the execution.
    pub fn stats(&self) -> &ExecutionStats {
        self.report.stats()
    }

    /// The per-round range across the honest processes (see
    /// [`RunReport::range_history`]).
    pub fn range_history(&self) -> Vec<f64> {
        self.report.range_history()
    }
}

// ---------------------------------------------------------------------------
// Restricted-round algorithms
// ---------------------------------------------------------------------------

/// Builder shim for the restricted-round synchronous algorithm.
#[deprecated(
    since = "0.2.0",
    note = "the per-protocol builders are replaced by the session API: \
                  BvcSession::new(ProtocolKind::…, RunConfig::new(n, f, d)…) — see \
                  crates/bvc-core/README.md §Session API for the migration table"
)]
#[derive(Debug, Clone)]
pub struct RestrictedSyncRunBuilder {
    config: RunConfig,
}

impl RestrictedSyncRunBuilder {
    forward_setters!();
    forward_epsilon_setter!();

    /// Runs the execution through [`BvcSession`].
    ///
    /// # Errors
    ///
    /// The validation errors of [`RunConfig::validate`].
    pub fn run(self) -> Result<RestrictedRun, BvcError> {
        Ok(RestrictedRun {
            report: BvcSession::new(ProtocolKind::RestrictedSync, self.config)?.run(),
        })
    }
}

/// Builder shim for the restricted-round asynchronous algorithm.
#[deprecated(
    since = "0.2.0",
    note = "the per-protocol builders are replaced by the session API: \
                  BvcSession::new(ProtocolKind::…, RunConfig::new(n, f, d)…) — see \
                  crates/bvc-core/README.md §Session API for the migration table"
)]
#[derive(Debug, Clone)]
pub struct RestrictedAsyncRunBuilder {
    config: RunConfig,
}

impl RestrictedAsyncRunBuilder {
    forward_setters!();
    forward_epsilon_setter!();
    forward_async_setters!();

    /// Runs the execution through [`BvcSession`].
    ///
    /// # Errors
    ///
    /// The validation errors of [`RunConfig::validate`].
    pub fn run(self) -> Result<RestrictedRun, BvcError> {
        Ok(RestrictedRun {
            report: BvcSession::new(ProtocolKind::RestrictedAsync, self.config)?.run(),
        })
    }
}

/// A completed restricted-round execution (shim over [`RunReport`]).
#[deprecated(
    since = "0.2.0",
    note = "the per-protocol builders are replaced by the session API: \
                  BvcSession::new(ProtocolKind::…, RunConfig::new(n, f, d)…) — see \
                  crates/bvc-core/README.md §Session API for the migration table"
)]
#[derive(Debug, Clone)]
pub struct RestrictedRun {
    report: RunReport,
}

impl RestrictedRun {
    /// Starts building a synchronous restricted-round execution.
    pub fn sync_builder(n: usize, f: usize, d: usize) -> RestrictedSyncRunBuilder {
        RestrictedSyncRunBuilder {
            config: RunConfig::new(n, f, d),
        }
    }

    /// Starts building an asynchronous restricted-round execution.
    pub fn async_builder(n: usize, f: usize, d: usize) -> RestrictedAsyncRunBuilder {
        RestrictedAsyncRunBuilder {
            config: RunConfig::new(n, f, d),
        }
    }

    /// The unified report behind this shim.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// The honest processes' decisions.
    pub fn decisions(&self) -> &[Point] {
        self.report.decisions()
    }

    /// The verdict against ε-Agreement / Validity / Termination.
    pub fn verdict(&self) -> &Verdict {
        self.report.verdict()
    }

    /// The validity mode the verdict was scored against, with its (possibly
    /// lowered) resource requirement.
    pub fn validity(&self) -> &ValidityCheck {
        self.report
            .validity()
            .expect("the restricted protocols record a resource check")
    }

    /// Rounds (synchronous) or scheduler steps (asynchronous) executed.
    pub fn rounds(&self) -> usize {
        self.report.rounds()
    }

    /// Message statistics of the execution.
    pub fn stats(&self) -> &ExecutionStats {
        self.report.stats()
    }
}

// ---------------------------------------------------------------------------
// Iterative BVC
// ---------------------------------------------------------------------------

/// Builder shim for an iterative incomplete-graph BVC execution.
#[deprecated(
    since = "0.2.0",
    note = "the per-protocol builders are replaced by the session API: \
                  BvcSession::new(ProtocolKind::…, RunConfig::new(n, f, d)…) — see \
                  crates/bvc-core/README.md §Session API for the migration table"
)]
#[derive(Debug, Clone)]
pub struct IterativeBvcRunBuilder {
    config: RunConfig,
}

impl IterativeBvcRunBuilder {
    forward_setters!();
    forward_epsilon_setter!();

    /// Runs the execution through [`BvcSession`].
    ///
    /// # Errors
    ///
    /// The validation errors of [`RunConfig::validate`] (a topology that
    /// violates the sufficiency condition is data, not an error).
    pub fn run(self) -> Result<IterativeBvcRun, BvcError> {
        Ok(IterativeBvcRun {
            report: BvcSession::new(ProtocolKind::Iterative, self.config)?.run(),
        })
    }
}

/// A completed iterative incomplete-graph execution (shim over
/// [`RunReport`]).
#[deprecated(
    since = "0.2.0",
    note = "the per-protocol builders are replaced by the session API: \
                  BvcSession::new(ProtocolKind::…, RunConfig::new(n, f, d)…) — see \
                  crates/bvc-core/README.md §Session API for the migration table"
)]
#[derive(Debug, Clone)]
pub struct IterativeBvcRun {
    report: RunReport,
}

impl IterativeBvcRun {
    /// Starts building an execution with `n` processes, `f` Byzantine,
    /// inputs of dimension `d`.
    pub fn builder(n: usize, f: usize, d: usize) -> IterativeBvcRunBuilder {
        IterativeBvcRunBuilder {
            config: RunConfig::new(n, f, d),
        }
    }

    /// The unified report behind this shim.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// The honest processes' decisions.
    pub fn decisions(&self) -> &[Point] {
        self.report.decisions()
    }

    /// The honest inputs the run was configured with.
    pub fn honest_inputs(&self) -> &[Point] {
        self.report.honest_inputs()
    }

    /// The verdict against ε-Agreement / Validity / Termination.
    pub fn verdict(&self) -> &Verdict {
        self.report.verdict()
    }

    /// The validity mode the verdict was scored against.
    pub fn validity_mode(&self) -> &ValidityMode {
        self.report.validity_mode()
    }

    /// The up-front graph-condition check: whether convergence was expected
    /// on this topology at all.
    pub fn sufficiency(&self) -> &Sufficiency {
        self.report
            .sufficiency()
            .expect("the iterative protocol records its sufficiency verdict")
    }

    /// The static round budget of the execution.
    pub fn round_budget(&self) -> usize {
        self.report
            .round_budget()
            .expect("the iterative protocol has a static budget")
    }

    /// The topology the run executed on.
    pub fn topology(&self) -> &Topology {
        self.report.topology()
    }

    /// Number of synchronous rounds executed.
    pub fn rounds(&self) -> usize {
        self.report.rounds()
    }

    /// Message statistics of the execution.
    pub fn stats(&self) -> &ExecutionStats {
        self.report.stats()
    }
}

#[cfg(test)]
mod tests {
    //! Shim-equivalence: the deprecated builders must produce exactly what a
    //! hand-built session produces — they are the same code path, and these
    //! tests keep it that way until the shims are removed.

    use super::*;

    fn square_inputs() -> Vec<Point> {
        vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.0, 1.0]),
            Point::new(vec![1.0, 1.0]),
        ]
    }

    #[test]
    fn exact_shim_matches_the_session() {
        let shim = ExactBvcRun::builder(5, 1, 2)
            .honest_inputs(square_inputs())
            .adversary(ByzantineStrategy::FixedOutlier)
            .seed(7)
            .run()
            .expect("bound satisfied");
        let report = BvcSession::new(
            ProtocolKind::Exact,
            RunConfig::new(5, 1, 2)
                .honest_inputs(square_inputs())
                .adversary(ByzantineStrategy::FixedOutlier)
                .seed(7),
        )
        .expect("bound satisfied")
        .run();
        assert_eq!(shim.decisions(), report.decisions());
        assert_eq!(shim.verdict(), report.verdict());
        assert_eq!(shim.rounds(), report.rounds());
        assert_eq!(shim.stats(), report.stats());
    }

    #[test]
    fn approx_shim_matches_the_session() {
        let shim = ApproxBvcRun::builder(5, 1, 2)
            .honest_inputs(square_inputs())
            .adversary(ByzantineStrategy::AntiConvergence)
            .epsilon(0.1)
            .seed(3)
            .run()
            .expect("bound satisfied");
        let report = BvcSession::new(
            ProtocolKind::Approx,
            RunConfig::new(5, 1, 2)
                .honest_inputs(square_inputs())
                .adversary(ByzantineStrategy::AntiConvergence)
                .epsilon(0.1)
                .seed(3),
        )
        .expect("bound satisfied")
        .run();
        assert_eq!(shim.decisions(), report.decisions());
        assert_eq!(shim.verdict(), report.verdict());
        assert_eq!(shim.round_budget(), report.round_budget().unwrap());
        assert_eq!(shim.epsilon(), report.epsilon().unwrap());
        assert_eq!(shim.range_history(), report.range_history());
    }

    #[test]
    fn restricted_and_iterative_shims_match_the_session() {
        let shim = RestrictedRun::sync_builder(5, 1, 2)
            .honest_inputs(square_inputs())
            .epsilon(0.1)
            .seed(5)
            .run()
            .expect("bound satisfied");
        let report = BvcSession::new(
            ProtocolKind::RestrictedSync,
            RunConfig::new(5, 1, 2)
                .honest_inputs(square_inputs())
                .epsilon(0.1)
                .seed(5),
        )
        .expect("bound satisfied")
        .run();
        assert_eq!(shim.decisions(), report.decisions());
        assert_eq!(shim.verdict(), report.verdict());

        let inputs: Vec<Point> = (0..5).map(|i| Point::new(vec![i as f64 / 4.0])).collect();
        let shim = IterativeBvcRun::builder(6, 1, 1)
            .honest_inputs(inputs.clone())
            .epsilon(0.05)
            .seed(3)
            .run()
            .expect("structurally valid");
        let report = BvcSession::new(
            ProtocolKind::Iterative,
            RunConfig::new(6, 1, 1)
                .honest_inputs(inputs)
                .epsilon(0.05)
                .seed(3),
        )
        .expect("structurally valid")
        .run();
        assert_eq!(shim.decisions(), report.decisions());
        assert_eq!(shim.sufficiency(), report.sufficiency().unwrap());
        assert_eq!(shim.round_budget(), report.round_budget().unwrap());
    }
}
