//! Determinism pins for the heavy-scan worker pool and the incremental
//! cache mode.
//!
//! The Γ engine's determinism contract after the parallel subset-hull work:
//!
//! * `gamma_point` / `gamma_contains` results are **byte-identical at every
//!   worker count** (the pool returns the minimum matching ordinal, which is
//!   schedule-invariant);
//! * trace streams are byte-identical too (heavy scans run on spawned,
//!   scope-less worker threads even at one worker, so the pool is invisible
//!   to tracing);
//! * the incremental cache mode (refuter-ordinal hints) changes cost only —
//!   every answer equals the plain cache's bit for bit.
//!
//! Worker-count mutation is global, so the tests that touch it serialise on
//! a file-local mutex.

use bvc_geometry::{
    gamma_contains, gamma_point_attributed, set_gamma_workers, GammaCache, Point, PointMultiset,
    WorkloadGenerator,
};
use bvc_trace::TraceHandle;
use std::sync::Mutex;

/// Serialises tests that mutate the global worker count.
static WORKERS: Mutex<()> = Mutex::new(());

fn bits(p: &Point) -> Vec<u64> {
    p.coords().iter().map(|c| c.to_bits()).collect()
}

/// The heavy cliff shape: `n = 10`, `f = 2`, `d = 3` has `C(10, 8) = 45`
/// subset hulls, above the pool's threshold of 40.
fn heavy_workload(seed: u64) -> PointMultiset {
    WorkloadGenerator::new(seed).box_points(10, 3, 0.0, 1.0)
}

#[test]
fn gamma_results_are_byte_identical_at_every_worker_count() {
    let _serialise = WORKERS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let outcomes_at = |workers: usize| {
        set_gamma_workers(workers);
        let mut outcomes = Vec::new();
        for s in 0..8u64 {
            let y = heavy_workload(2000 + s);
            let (point, attribution) = gamma_point_attributed(&y, 2);
            let member = point
                .as_ref()
                .map(|p| gamma_contains(&y, 2, p))
                .unwrap_or(false);
            // A probe inside the trimmed box (forces a full scan when the
            // point is outside Γ) and one far outside (box reject).
            let centre = Point::new(vec![0.5, 0.5, 0.5]);
            let outside = Point::new(vec![9.0, 9.0, 9.0]);
            outcomes.push((
                point.as_ref().map(bits),
                attribution.path,
                member,
                gamma_contains(&y, 2, &centre),
                gamma_contains(&y, 2, &outside),
            ));
        }
        outcomes
    };
    let reference = outcomes_at(1);
    for workers in [2usize, 4, 8] {
        assert_eq!(
            outcomes_at(workers),
            reference,
            "workers = {workers}: results must be byte-identical to the single-worker scan"
        );
    }
    set_gamma_workers(0);
}

#[test]
fn traces_are_byte_identical_at_every_worker_count() {
    let _serialise = WORKERS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let capture = |workers: usize| -> Vec<String> {
        set_gamma_workers(workers);
        let handle = TraceHandle::jsonl();
        {
            let _scope = bvc_trace::install(handle.clone(), 0);
            let cache = GammaCache::new();
            for s in 0..4u64 {
                let y = heavy_workload(3000 + s);
                if let Some(p) = cache.find_point(&y, 2) {
                    assert!(cache.contains(&y, 2, &p));
                }
                let _ = cache.contains(&y, 2, &Point::new(vec![0.5, 0.5, 0.5]));
            }
        }
        handle.finish()
    };
    let reference = capture(1);
    assert!(
        !reference.is_empty(),
        "the traced queries must emit events for the comparison to mean anything"
    );
    for workers in [2usize, 4] {
        assert_eq!(
            capture(workers),
            reference,
            "workers = {workers}: the pool must be invisible to the trace stream"
        );
    }
    set_gamma_workers(0);
}

/// Contracts every point halfway towards the multiset centroid — the shape
/// of successive rounds of the iterative protocols, which is exactly the
/// workload the incremental mode targets.
fn contract(points: &[Point]) -> Vec<Point> {
    let d = points[0].dim();
    let mut centroid = vec![0.0; d];
    for p in points {
        for (c, v) in centroid.iter_mut().zip(p.coords()) {
            *c += v / points.len() as f64;
        }
    }
    points
        .iter()
        .map(|p| {
            Point::new(
                p.coords()
                    .iter()
                    .zip(&centroid)
                    .map(|(v, c)| 0.5 * (v + c))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn incremental_cache_equals_plain_cache_over_round_contractions() {
    let plain = GammaCache::new();
    let incremental = GammaCache::new();
    incremental.enable_incremental();
    assert!(incremental.incremental_enabled());
    for seed in 0..3u64 {
        let mut points = heavy_workload(4000 + seed).points().to_vec();
        for round in 0..5 {
            let y = PointMultiset::new(points.clone());
            let a = plain.find_point(&y, 2);
            let b = incremental.find_point(&y, 2);
            assert_eq!(
                a.as_ref().map(bits),
                b.as_ref().map(bits),
                "seed {seed} round {round}: hints must never change the chosen point"
            );
            for probe in [
                Point::new(vec![0.5, 0.5, 0.5]),
                Point::new(vec![9.0, 9.0, 9.0]),
            ] {
                assert_eq!(
                    plain.contains(&y, 2, &probe),
                    incremental.contains(&y, 2, &probe),
                    "seed {seed} round {round}: hints must never change membership"
                );
            }
            points = contract(&points);
        }
    }
}

#[test]
fn incremental_hints_engage_on_recurring_refuters() {
    // Square corners plus centre, f = 1: points near (3.5, 2.0) sit inside
    // the trimmed box but outside Γ, and the same subset hull refutes each
    // of them — the stable-refuter pattern of contracting rounds.  Distinct
    // coordinates defeat the result cache, so every query reaches the
    // engine, and from the second query on the remembered refuter must
    // short-circuit the scan.
    let y = PointMultiset::new(vec![
        Point::new(vec![0.0, 0.0]),
        Point::new(vec![4.0, 0.0]),
        Point::new(vec![0.0, 4.0]),
        Point::new(vec![4.0, 4.0]),
        Point::new(vec![2.0, 2.0]),
    ]);
    let plain = GammaCache::new();
    let incremental = GammaCache::new();
    incremental.enable_incremental();
    for i in 0..6 {
        let probe = Point::new(vec![3.5 + 0.01 * f64::from(i), 2.0]);
        assert_eq!(
            plain.contains(&y, 1, &probe),
            incremental.contains(&y, 1, &probe),
            "query {i}"
        );
    }
    assert!(
        incremental.hint_hits() > 0,
        "the remembered refuter must serve repeat refutations"
    );
    assert_eq!(plain.hint_hits(), 0, "hints are opt-in");
}
