//! Campaign mode: expand scenario files into an instance matrix and run it
//! across OS threads.
//!
//! A campaign is the cartesian product `seeds × strategies × policies` per
//! scenario (each axis defaulting to the scenario's single base value), run
//! by a fixed-size `std::thread` worker pool that pulls instances off an
//! atomic cursor.  Results are collected **by instance index**, so the output
//! order — and therefore the emitted JSON — is independent of thread
//! interleaving: campaigns are as deterministic as single runs.

use crate::runner::{run_scenario_instance, ScenarioError, ScenarioOutcome};
use crate::schema::{Protocol, ScenarioSpec};
use bvc_adversary::ByzantineStrategy;
use bvc_core::ValidityMode;
use bvc_net::DeliveryPolicy;
use bvc_service::{ReorderBuffer, VerdictSink};
use bvc_topology::TopologySpec;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::thread;

/// One expanded cell of the campaign matrix.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Index of the originating scenario in the campaign input order.
    pub scenario_index: usize,
    /// The scenario this instance came from.
    pub spec: ScenarioSpec,
    /// Executor seed.
    pub seed: u64,
    /// Byzantine strategy.
    pub strategy: ByzantineStrategy,
    /// Delivery policy.
    pub policy: DeliveryPolicy,
    /// Topology of this instance (`None` ⇒ the plain complete graph with no
    /// topology metadata in the verdict).
    pub topology: Option<TopologySpec>,
    /// Validity mode of this instance (`None` ⇒ strict scoring with no
    /// validity metadata in the verdict).
    pub validity: Option<ValidityMode>,
}

/// Expands one scenario into its instance matrix (a scenario without a
/// `[campaign]` section expands to exactly one instance).
///
/// Synchronous protocols ignore the delivery policy, so their `policies`
/// axis is collapsed to one value — sweeping it would only produce
/// byte-identical duplicate instances.
///
/// A `broadcast` axis (directed protocols only; the schema rejects it
/// elsewhere) rewrites each instance's *protocol* between the two directed
/// kinds — the broadcast model is part of the protocol's delivery
/// assumption, so the sweep shows up in the verdict's `protocol` field
/// rather than a new one.
pub fn expand(scenario_index: usize, spec: &ScenarioSpec) -> Vec<Instance> {
    let (seeds, strategies, policies, topologies, validity_axis, broadcasts) = match &spec.campaign
    {
        None => (
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
            Vec::new(),
        ),
        Some(c) => (
            c.seeds.clone(),
            c.strategies.clone(),
            c.policies.clone(),
            c.topologies.clone(),
            c.validity_axis(),
            c.broadcasts.clone(),
        ),
    };
    let seeds = if seeds.is_empty() {
        vec![spec.seed]
    } else {
        seeds
    };
    let strategies = if strategies.is_empty() {
        vec![spec.strategy]
    } else {
        strategies
    };
    let policies = if policies.is_empty() || !spec.protocol.is_async() {
        vec![spec.policy.clone()]
    } else {
        policies
    };
    let topologies: Vec<Option<TopologySpec>> = if topologies.is_empty() {
        vec![spec.topology.clone()]
    } else {
        topologies.into_iter().map(Some).collect()
    };
    let validities: Vec<Option<ValidityMode>> = if validity_axis.is_empty() {
        vec![spec.validity]
    } else {
        validity_axis.into_iter().map(Some).collect()
    };
    let protocols: Vec<Protocol> = if broadcasts.is_empty() {
        vec![spec.protocol]
    } else {
        broadcasts
            .iter()
            .map(|&model| spec.protocol.with_broadcast(model).unwrap_or(spec.protocol))
            .collect()
    };
    let capacity = seeds.len()
        * strategies.len()
        * policies.len()
        * topologies.len()
        * validities.len()
        * protocols.len();
    let mut instances = Vec::with_capacity(capacity);
    for &seed in &seeds {
        for &strategy in &strategies {
            for policy in &policies {
                for topology in &topologies {
                    for validity in &validities {
                        for &protocol in &protocols {
                            let mut spec = spec.clone();
                            spec.protocol = protocol;
                            instances.push(Instance {
                                scenario_index,
                                spec,
                                seed,
                                strategy,
                                policy: policy.clone(),
                                topology: topology.clone(),
                                validity: *validity,
                            });
                        }
                    }
                }
            }
        }
    }
    instances
}

/// Expands a whole campaign (scenarios in input order).
pub fn expand_all(specs: &[ScenarioSpec]) -> Vec<Instance> {
    specs
        .iter()
        .enumerate()
        .flat_map(|(i, spec)| expand(i, spec))
        .collect()
}

/// Outcome of one instance: the verdict, or why it could not run.
pub type InstanceResult = Result<ScenarioOutcome, ScenarioError>;

/// The shared worker pool behind both campaign entry points: `jobs` threads
/// pull instances off an atomic cursor and hand each `(index, result)` to
/// `consume` as soon as it completes (any thread, any order).
///
/// `jobs == 0` selects the available parallelism (or 1 if unknown).
fn run_pool(instances: &[Instance], jobs: usize, consume: &(dyn Fn(usize, InstanceResult) + Sync)) {
    let jobs = if jobs == 0 {
        thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        jobs
    };
    let jobs = jobs.min(instances.len()).max(1);

    let cursor = AtomicUsize::new(0);
    thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(instance) = instances.get(index) else {
                    break;
                };
                let result = run_scenario_instance(
                    &instance.spec,
                    instance.seed,
                    instance.strategy,
                    instance.policy.clone(),
                    instance.topology.as_ref(),
                    instance.validity.as_ref(),
                );
                consume(index, result);
            });
        }
    });
}

/// Runs every instance on a pool of `jobs` worker threads and returns the
/// results in instance order, independent of scheduling.
///
/// `jobs == 0` selects the available parallelism (or 1 if unknown).
pub fn run_campaign(instances: &[Instance], jobs: usize) -> Vec<InstanceResult> {
    let results: Mutex<Vec<Option<InstanceResult>>> =
        Mutex::new((0..instances.len()).map(|_| None).collect());
    run_pool(instances, jobs, &|index, result| {
        results.lock().expect("results lock poisoned")[index] = Some(result);
    });
    results
        .into_inner()
        .expect("results lock poisoned")
        .into_iter()
        .map(|slot| slot.expect("every instance index was processed"))
        .collect()
}

/// Everything the streaming campaign accumulates under one lock: the reorder
/// buffer releasing verdict lines in instance order, the sink they drain
/// into, the running summary, the rejections (reported out-of-band, since
/// they emit no line), and the first sink error.
struct StreamState<'a> {
    reorder: ReorderBuffer,
    sink: &'a mut dyn VerdictSink,
    summary: CampaignSummary,
    rejections: Vec<(usize, ScenarioError)>,
    error: Option<io::Error>,
}

/// Runs every instance on a pool of `jobs` worker threads, **streaming** each
/// verdict line into `sink` as soon as it is next in instance order — the
/// emitted byte stream is identical to collecting every result first, but a
/// long campaign produces output (and frees each outcome) as it goes instead
/// of holding the whole result vector until the end.
///
/// Rejected instances emit no line (exactly as [`run_campaign`] callers skip
/// them); they consume their slot in the order buffer and come back in the
/// second return value, sorted by instance index.  `sink.finish()` is called
/// after the last line.
///
/// `jobs == 0` selects the available parallelism (or 1 if unknown).
///
/// # Errors
///
/// The first sink I/O error aborts emission (remaining instances still run,
/// their lines are dropped) and is returned.
pub fn run_campaign_streaming(
    instances: &[Instance],
    jobs: usize,
    sink: &mut dyn VerdictSink,
) -> io::Result<(CampaignSummary, Vec<(usize, ScenarioError)>)> {
    let state = Mutex::new(StreamState {
        reorder: ReorderBuffer::new(),
        sink,
        summary: CampaignSummary::default(),
        rejections: Vec::new(),
        error: None,
    });
    run_pool(instances, jobs, &|index, result| {
        let mut state = state.lock().unwrap_or_else(PoisonError::into_inner);
        let StreamState {
            reorder,
            sink,
            summary,
            rejections,
            error,
        } = &mut *state;
        summary.add(&result);
        let line = match result {
            Ok(outcome) => Some(outcome.to_json()),
            Err(e) => {
                rejections.push((index, e));
                None
            }
        };
        match error {
            Some(_) => {} // sink already failed; keep tallying, stop writing
            None => {
                if let Err(e) = reorder.push(index as u64, line, &mut **sink) {
                    *error = Some(e);
                }
            }
        }
    });
    let mut state = state.into_inner().unwrap_or_else(PoisonError::into_inner);
    if let Some(error) = state.error {
        return Err(error);
    }
    debug_assert!(state.reorder.is_drained(), "every index was pushed");
    state.sink.finish()?;
    state.rejections.sort_by_key(|&(index, _)| index);
    Ok((state.summary, state.rejections))
}

/// Aggregate counts over a finished campaign, for the human-readable summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Instances that ran and whose verdict held all three conditions.
    pub passed: usize,
    /// Instances that ran but violated agreement, validity or termination on
    /// a substrate the checker declared solvable.
    pub violated: usize,
    /// Instances whose verdict failed on a substrate flagged up front as
    /// expected-unsolvable — a topology failing the iterative sufficiency
    /// check, or a validity mode whose (possibly lowered) resource bound the
    /// run is below — data the campaign set out to collect, not a
    /// regression.
    pub expected_unsolvable: usize,
    /// Instances that could not run (bound/parameter rejections).
    pub rejected: usize,
}

impl CampaignSummary {
    /// Tallies one result into the summary.
    pub fn add(&mut self, result: &InstanceResult) {
        match result {
            Ok(outcome) if outcome.verdict.all_hold() => self.passed += 1,
            Ok(outcome)
                if outcome
                    .topology
                    .as_ref()
                    .is_some_and(|t| !t.expected_solvable)
                    || outcome.validity.as_ref().is_some_and(|v| !v.satisfied) =>
            {
                self.expected_unsolvable += 1
            }
            Ok(_) => self.violated += 1,
            Err(_) => self.rejected += 1,
        }
    }

    /// Tallies a result list.
    pub fn tally(results: &[InstanceResult]) -> Self {
        let mut summary = Self::default();
        for result in results {
            summary.add(result);
        }
        summary
    }

    /// Total number of instances.
    pub fn total(&self) -> usize {
        self.passed + self.violated + self.expected_unsolvable + self.rejected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_spec() -> ScenarioSpec {
        ScenarioSpec::from_toml(
            "[scenario]\nname = \"sweep\"\nprotocol = \"approx\"\nn = 5\nf = 1\nd = 2\n\
             epsilon = 0.1\nmax_steps = 500000\n\
             [campaign]\nseed_range = [0, 2]\nstrategies = [\"equivocate\", \"silent\"]\n\
             policies = [\"random-fair\", \"round-robin\"]\n",
        )
        .unwrap()
    }

    #[test]
    fn expansion_is_the_cartesian_product_in_stable_order() {
        let spec = sweep_spec();
        let instances = expand(0, &spec);
        assert_eq!(instances.len(), 3 * 2 * 2);
        assert_eq!(instances[0].seed, 0);
        assert_eq!(instances.last().unwrap().seed, 2);
        // Policies vary fastest, then strategies, then seeds.
        assert_eq!(instances[0].policy, DeliveryPolicy::RandomFair);
        assert_eq!(instances[1].policy, DeliveryPolicy::RoundRobin);
        assert_eq!(instances[0].strategy, instances[1].strategy);
        assert_ne!(instances[0].strategy, instances[2].strategy);
    }

    #[test]
    fn sync_protocols_do_not_sweep_the_policy_axis() {
        // Delivery policies are meaningless for lock-step protocols; sweeping
        // them would duplicate every instance byte-for-byte.
        let spec = ScenarioSpec::from_toml(
            "[scenario]\nname = \"s\"\nprotocol = \"restricted-sync\"\nn = 5\nf = 1\nd = 2\n\
             [campaign]\nseeds = [0, 1]\npolicies = [\"random-fair\", \"round-robin\"]\n",
        )
        .unwrap();
        assert_eq!(expand(0, &spec).len(), 2);
    }

    #[test]
    fn topology_axis_multiplies_instances_and_defaults_to_none() {
        let spec = ScenarioSpec::from_toml(
            "[scenario]\nname = \"topo\"\nprotocol = \"iterative\"\nn = 8\nf = 1\nd = 1\n\
             [campaign]\nseeds = [0, 1]\ntopologies = [\"complete\", \"ring\", \"torus:2x4\"]\n",
        )
        .unwrap();
        let instances = expand(0, &spec);
        assert_eq!(instances.len(), 2 * 3);
        assert_eq!(instances[0].topology, Some(TopologySpec::Complete));
        assert_eq!(instances[1].topology, Some(TopologySpec::Ring));
        assert_eq!(
            instances[2].topology,
            Some(TopologySpec::Torus { rows: 2, cols: 4 })
        );
        // Without a topologies axis, instances inherit the scenario topology
        // (None here: plain complete graph, no metadata).
        let plain = ScenarioSpec::from_toml(
            "[scenario]\nname = \"p\"\nprotocol = \"exact\"\nn = 5\nf = 1\nd = 2\n",
        )
        .unwrap();
        assert_eq!(expand(0, &plain)[0].topology, None);
    }

    #[test]
    fn broadcast_axis_rewrites_the_instance_protocol() {
        let spec = ScenarioSpec::from_toml(
            "[scenario]\nname = \"dir\"\nprotocol = \"directed-exact\"\nn = 8\nf = 1\nd = 2\n\
             [topology]\nkind = \"ring\"\n\
             [campaign]\nseeds = [0, 1]\nbroadcast = [\"point-to-point\", \"local\"]\n",
        )
        .unwrap();
        let instances = expand(0, &spec);
        assert_eq!(instances.len(), 2 * 2);
        // Broadcast varies fastest: the two delivery models of one seed land
        // on adjacent lines of the campaign output.
        assert_eq!(instances[0].spec.protocol, Protocol::DirectedExact);
        assert_eq!(instances[1].spec.protocol, Protocol::DirectedExactLb);
        assert_eq!(instances[0].seed, instances[1].seed);
        assert_eq!(instances[2].seed, 1);
        // Without the axis, the scenario protocol rides through untouched.
        let plain = ScenarioSpec::from_toml(
            "[scenario]\nname = \"dir\"\nprotocol = \"directed-exact-lb\"\nn = 8\nf = 1\nd = 2\n\
             [topology]\nkind = \"ring\"\n",
        )
        .unwrap();
        assert_eq!(
            expand(0, &plain)[0].spec.protocol,
            Protocol::DirectedExactLb
        );
    }

    #[test]
    fn expected_unsolvable_verdicts_do_not_count_as_violations() {
        let spec = ScenarioSpec::from_toml(
            "[scenario]\nname = \"ring-flagged\"\nprotocol = \"iterative\"\nn = 6\nf = 1\n\
             d = 1\nepsilon = 0.05\n[topology]\nkind = \"ring\"\n",
        )
        .unwrap();
        let instances = expand(0, &spec);
        let results = run_campaign(&instances, 1);
        let outcome = results[0].as_ref().unwrap();
        let meta = outcome.topology.as_ref().expect("topology metadata");
        assert_eq!(meta.sufficiency, "violated");
        assert!(!meta.expected_solvable);
        let summary = CampaignSummary::tally(&results);
        assert_eq!(
            summary.violated, 0,
            "flagged topologies are not regressions"
        );
        assert_eq!(
            summary.passed + summary.expected_unsolvable,
            1,
            "the single instance lands in passed or expected-unsolvable"
        );
    }

    #[test]
    fn scenarios_without_campaign_expand_to_one_instance() {
        let spec = ScenarioSpec::from_toml(
            "[scenario]\nname = \"single\"\nprotocol = \"exact\"\nn = 5\nf = 1\nd = 2\nseed = 9\n",
        )
        .unwrap();
        let instances = expand(3, &spec);
        assert_eq!(instances.len(), 1);
        assert_eq!(instances[0].seed, 9);
        assert_eq!(instances[0].scenario_index, 3);
    }

    #[test]
    fn streaming_campaign_emits_the_collected_byte_stream() {
        use bvc_service::MemorySink;
        let spec = sweep_spec();
        let instances = expand(0, &spec);
        let collected = run_campaign(&instances, 2);
        let expected: Vec<String> = collected
            .iter()
            .filter_map(|r| r.as_ref().ok().map(|o| o.to_json()))
            .collect();

        let mut sink = MemorySink::new();
        let (summary, rejections) = run_campaign_streaming(&instances, 4, &mut sink).unwrap();
        assert_eq!(sink.into_lines(), expected);
        assert_eq!(summary, CampaignSummary::tally(&collected));
        assert!(rejections.is_empty());
    }

    #[test]
    fn streaming_campaign_reports_rejections_in_instance_order() {
        use bvc_service::MemorySink;
        // n = 4 violates the approx bound (d+2)f+1 = 5: every instance is
        // rejected, none emits a line.
        let spec = ScenarioSpec::from_toml(
            "[scenario]\nname = \"under\"\nprotocol = \"approx\"\nn = 4\nf = 1\nd = 2\n\
             [campaign]\nseed_range = [0, 3]\n",
        )
        .unwrap();
        let instances = expand(0, &spec);
        let mut sink = MemorySink::new();
        let (summary, rejections) = run_campaign_streaming(&instances, 3, &mut sink).unwrap();
        assert!(sink.lines().is_empty());
        assert_eq!(summary.rejected, 4);
        let indices: Vec<usize> = rejections.iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, [0, 1, 2, 3]);
    }

    #[test]
    fn parallel_campaign_matches_serial_campaign() {
        let spec = sweep_spec();
        let instances = expand(0, &spec);
        let serial = run_campaign(&instances, 1);
        let parallel = run_campaign(&instances, 4);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.to_json(), b.to_json());
        }
        let summary = CampaignSummary::tally(&parallel);
        assert_eq!(summary.total(), instances.len());
        assert_eq!(summary.rejected, 0);
    }
}
