//! Hill-climbing search with restarts over the chaos genome.
//!
//! The loop is deliberately simple and **fully deterministic**: one
//! `StdRng` seeded from the master seed drives restart sampling and every
//! mutation, and each decision is appended to a textual trace — the
//! shrinker property tests pin that the same master seed produces a
//! byte-identical trace.  Each restart samples a fresh genome near a
//! protocol's resource boundary, then climbs: a mutation is kept iff its
//! score is no worse than the incumbent's, and any genuine violation ends
//! the restart with a finding (deduplicated by family signature).

use crate::genome::{ChaosGenome, FaultGene, ValidityGene};
use crate::objective::{evaluate, strict_bound, Evaluation};
use bvc_scenario::{BroadcastModel, Protocol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The sampling/mutation space the search explores.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Protocols to attack.
    pub protocols: Vec<Protocol>,
    /// Inclusive range of Byzantine counts.
    pub f_range: (usize, usize),
    /// Inclusive range of dimensions.
    pub d_range: (usize, usize),
    /// How far below/above the protocol's boundary (strict bound, or the
    /// relaxed family bound when the sampled validity is relaxed) the
    /// sampled `n` may sit.
    pub n_slack: usize,
    /// Largest α a restart or mutation may pick.
    pub alpha_max: f64,
    /// Async delivery-step cap for sampled genomes.
    pub max_steps: usize,
    /// Topology labels (campaign-compact form) a **directed** genome may
    /// declare.  Drawn only when the sampled or mutated protocol is one of
    /// the directed kinds, so spaces without a directed protocol consume no
    /// extra randomness and their traces stay byte-identical to the
    /// pre-digraph search.
    pub directed_topologies: Vec<String>,
}

impl SearchSpace {
    /// Whether the space contains a directed protocol kind — the gate that
    /// unlocks the digraph-aware mutation operators (and with them a wider
    /// operator draw, which is why it is a property of the *space*, not of
    /// the current genome: the draw sequence must not depend on search
    /// state that classic spaces never reach).
    pub fn has_directed(&self) -> bool {
        self.protocols.iter().any(|p| p.broadcast_model().is_some())
    }

    /// One topology label for a directed genome (`None` when the space
    /// declares no labels — the genome then runs on the complete graph).
    fn pick_topology(&self, rng: &mut StdRng) -> Option<String> {
        if self.directed_topologies.is_empty() {
            None
        } else {
            let i = rng.gen_range(0..self.directed_topologies.len());
            Some(self.directed_topologies[i].clone())
        }
    }
}

impl Default for SearchSpace {
    /// The default space is the whole complete-graph scenario surface the
    /// repo's campaigns sweep, centred on the resource boundaries — it is
    /// NOT seeded with any known failure: every shape/validity cell near a
    /// bound is sampled with equal probability.
    fn default() -> Self {
        Self {
            protocols: vec![Protocol::Exact, Protocol::RestrictedSync, Protocol::Approx],
            f_range: (1, 2),
            d_range: (1, 3),
            n_slack: 2,
            alpha_max: 4.0,
            max_steps: 400_000,
            // Only drawn from once a directed protocol enters the space
            // (the `--protocols` knob); the default protocol list above is
            // deliberately unchanged so the seed-0 CI trajectory is too.
            directed_topologies: vec![
                "complete".to_string(),
                "random-regular:4".to_string(),
                "ring".to_string(),
            ],
        }
    }
}

/// One genuine violation the search found.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violating genome, exactly as evaluated.
    pub genome: ChaosGenome,
    /// Family signature at discovery time.
    pub signature: String,
    /// Verdict flags `(agreement, validity, termination)` of the violation.
    pub flags: (bool, bool, bool),
    /// Objective score of the violating run.
    pub score: f64,
    /// Restart index that produced it.
    pub restart: usize,
}

/// The result of one search run.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Genuine violations, deduplicated by family signature, in discovery
    /// order.
    pub findings: Vec<Finding>,
    /// Total genome evaluations performed.
    pub evaluations: usize,
    /// Best score seen across the whole run.
    pub best_score: f64,
    /// The deterministic decision trace: one line per restart sample and
    /// per mutation, identical for identical master seeds.
    pub trace: Vec<String>,
}

/// Search budget and seed.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Master seed driving all sampling and mutation.
    pub master_seed: u64,
    /// Independent restarts.
    pub restarts: usize,
    /// Mutations attempted per restart.
    pub iters: usize,
    /// The space to explore.
    pub space: SearchSpace,
}

impl SearchConfig {
    /// A config over the default space.
    pub fn new(master_seed: u64, restarts: usize, iters: usize) -> Self {
        Self {
            master_seed,
            restarts,
            iters,
            space: SearchSpace::default(),
        }
    }
}

/// Samples a restart genome near a resource boundary (also the churn
/// engine's cell generator).
pub(crate) fn sample(rng: &mut StdRng, space: &SearchSpace) -> ChaosGenome {
    let protocol = space.protocols[rng.gen_range(0..space.protocols.len())];
    let f = rng.gen_range(space.f_range.0..=space.f_range.1);
    let d = rng.gen_range(space.d_range.0..=space.d_range.1);
    let validity = match rng.gen_range(0..3u32) {
        0 => ValidityGene::Strict,
        1 => ValidityGene::Alpha(rng.gen_range(0.0..=space.alpha_max)),
        _ => ValidityGene::K(rng.gen_range(1..=d)),
    };
    // Centre n on the bound that actually admits this validity family:
    // the strict bound for strict runs, the relaxed family's lowered bound
    // otherwise (probing the boundary is the generic heuristic — cells
    // below their own bound are simply rejected and scored out).
    let bound = match validity {
        ValidityGene::Strict => strict_bound(protocol, d, f),
        ValidityGene::Alpha(_) => strict_bound(protocol, 1, f),
        ValidityGene::K(k) => strict_bound(protocol, k.min(d), f),
    };
    let lo = bound.saturating_sub(space.n_slack).max(f + 2);
    let hi = bound + space.n_slack;
    let n = rng.gen_range(lo..=hi);
    let strategies = [
        "equivocate",
        "fixed-outlier",
        "anti-convergence",
        "random-noise",
    ];
    let strategy = match rng.gen_range(0..strategies.len() + 1) {
        i if i < strategies.len() => strategies[i].to_string(),
        _ => format!("split-brain:{}", rng.gen_range(1..(1u64 << n.min(16)))),
    };
    // Directed protocols live or die by their graph condition, so every
    // directed restart declares a topology; the classic kinds keep the
    // complete graph and draw nothing here.
    let topology = if protocol.broadcast_model().is_some() {
        space.pick_topology(rng)
    } else {
        None
    };
    let mut genome = ChaosGenome {
        protocol,
        n,
        f,
        d,
        epsilon: 0.1,
        seed: rng.gen_range(0..1000u64),
        points: Vec::new(),
        strategy,
        validity,
        topology,
        faults: Vec::new(),
        round_robin: false,
        max_steps: space.max_steps,
    };
    genome.fix_points(rng);
    genome
}

/// Applies one named mutation, returning the mutated genome and the
/// operator label recorded in the trace.
fn mutate(genome: &ChaosGenome, rng: &mut StdRng, space: &SearchSpace) -> (ChaosGenome, String) {
    let mut g = genome.clone();
    // Spaces holding a directed protocol unlock two digraph operators
    // (protocol swap, broadcast-flip/retopo).  The wider draw is gated on
    // the space — fixed per run — so classic spaces keep the exact operator
    // distribution (and rng stream) of the pre-digraph search.
    let operators = if space.has_directed() { 14u32 } else { 12 };
    let op = match rng.gen_range(0..operators) {
        0 => {
            let p = rng.gen_range(0..g.points.len());
            let c = rng.gen_range(0..g.d);
            let delta = rng.gen_range(-0.25..=0.25);
            g.points[p][c] = (g.points[p][c] + delta).clamp(0.0, 1.0);
            format!("nudge-input:p{p}c{c}")
        }
        1 => {
            g.seed = rng.gen_range(0..1000u64);
            "reseed".to_string()
        }
        2 => {
            let strategies = [
                "equivocate",
                "fixed-outlier",
                "anti-convergence",
                "random-noise",
            ];
            g.strategy = strategies[rng.gen_range(0..strategies.len())].to_string();
            format!("swap-strategy:{}", g.strategy)
        }
        3 => {
            let mask = rng.gen_range(1..(1u64 << g.n.min(16)));
            g.strategy = format!("split-brain:{mask}");
            format!("retarget-mask:{mask}")
        }
        4 => {
            // The α knob: multiply an existing α (factors < 1 weaken the
            // relaxation — the monotone direction toward an empty Γ_α), or
            // enter the α family fresh.
            let alpha = match g.validity {
                ValidityGene::Alpha(a) => {
                    let factor: f64 = [0.25, 0.5, 0.75, 1.5, 2.0][rng.gen_range(0..5usize)];
                    (a * factor).clamp(0.01, space.alpha_max)
                }
                _ => rng.gen_range(0.0..=space.alpha_max),
            };
            g.validity = ValidityGene::Alpha(alpha);
            "scale-alpha".to_string()
        }
        5 => {
            g.validity = ValidityGene::K(rng.gen_range(1..=g.d));
            "relax-k".to_string()
        }
        6 => {
            g.validity = ValidityGene::Strict;
            "strict-mode".to_string()
        }
        7 => {
            if rng.gen_bool(0.5) && g.n > g.f + 2 {
                g.n -= 1;
                g.fix_points(rng);
                "shrink-n".to_string()
            } else {
                g.n += 1;
                g.fix_points(rng);
                "grow-n".to_string()
            }
        }
        8 => {
            if rng.gen_bool(0.5) && g.f > 1 {
                g.f -= 1;
            } else if g.n > g.f + 3 {
                g.f += 1;
            }
            g.fix_points(rng);
            "retune-f".to_string()
        }
        9 => {
            if g.faults.len() < 3 {
                let from = rng.gen_range(0..g.n);
                let to = (from + rng.gen_range(1..g.n)) % g.n;
                g.faults.push(FaultGene {
                    from,
                    to,
                    extra: rng.gen_range(1..=5usize),
                    start: rng.gen_range(1..=3usize),
                    duration: rng.gen_range(1..=6usize),
                });
                "fault-add".to_string()
            } else {
                g.faults.clear();
                "fault-clear".to_string()
            }
        }
        10 => {
            if g.faults.is_empty() {
                g.round_robin = !g.round_robin;
                "delivery-flip".to_string()
            } else {
                let i = rng.gen_range(0..g.faults.len());
                g.faults.remove(i);
                format!("fault-drop:{i}")
            }
        }
        11 => {
            let lo = space.d_range.0;
            let hi = space.d_range.1;
            g.d = if rng.gen_bool(0.5) && g.d > lo {
                g.d - 1
            } else {
                (g.d + 1).min(hi)
            };
            g.fix_points(rng);
            "redim".to_string()
        }
        12 => {
            // Digraph operator: hop to any protocol in the space.  Entering
            // the directed family brings a topology along (the graph
            // condition is what makes those kinds interesting); leaving it
            // sheds the topology so classic genomes stay classic.
            let protocol = space.protocols[rng.gen_range(0..space.protocols.len())];
            g.protocol = protocol;
            if protocol.broadcast_model().is_some() {
                if g.topology.is_none() {
                    g.topology = space.pick_topology(rng);
                }
            } else {
                g.topology = None;
            }
            format!("swap-protocol:{}", protocol.name())
        }
        _ => {
            // Digraph operator: on a directed genome, flip the delivery
            // model (point-to-point ↔ local broadcast — the tighter cut
            // threshold is exactly the boundary worth probing) or rewire
            // onto a different topology; elsewhere fall back to a reseed so
            // the operator is never a silent no-op.
            match g.protocol.broadcast_model() {
                Some(model) => {
                    if rng.gen_bool(0.5) {
                        let flipped = match model {
                            BroadcastModel::PointToPoint => BroadcastModel::Local,
                            BroadcastModel::Local => BroadcastModel::PointToPoint,
                        };
                        g.protocol = g
                            .protocol
                            .with_broadcast(flipped)
                            .expect("directed protocols always have a broadcast axis");
                        "flip-broadcast".to_string()
                    } else {
                        g.topology = space.pick_topology(rng);
                        match &g.topology {
                            Some(label) => format!("retopo:{label}"),
                            None => "retopo:complete".to_string(),
                        }
                    }
                }
                None => {
                    g.seed = rng.gen_range(0..1000u64);
                    "reseed".to_string()
                }
            }
        }
    };
    (g, op)
}

/// Score formatting for the trace: fixed precision so the trace is
/// byte-stable and readable.
fn fmt_score(score: f64) -> String {
    if score == f64::NEG_INFINITY {
        "rejected".to_string()
    } else {
        format!("{score:.3}")
    }
}

/// Runs the full hill-climbing search.
pub fn search(config: &SearchConfig) -> SearchReport {
    let mut rng = StdRng::seed_from_u64(config.master_seed);
    let mut report = SearchReport {
        findings: Vec::new(),
        evaluations: 0,
        best_score: f64::NEG_INFINITY,
        trace: Vec::new(),
    };

    for restart in 0..config.restarts {
        let mut current = sample(&mut rng, &config.space);
        let mut eval = evaluate(&current);
        report.evaluations += 1;
        report.trace.push(format!(
            "r{restart} sample {} -> {}",
            current.signature(),
            fmt_score(eval.score)
        ));
        report.best_score = report.best_score.max(eval.score);
        if record_if_violation(&mut report, &current, &eval, restart) {
            continue;
        }

        for iter in 0..config.iters {
            let (candidate, op) = mutate(&current, &mut rng, &config.space);
            let cand_eval = evaluate(&candidate);
            report.evaluations += 1;
            let accepted = cand_eval.score >= eval.score;
            report.trace.push(format!(
                "r{restart}.{iter} {op} -> {} {}",
                fmt_score(cand_eval.score),
                if accepted { "accept" } else { "keep" }
            ));
            if record_if_violation(&mut report, &candidate, &cand_eval, restart) {
                break;
            }
            if accepted {
                current = candidate;
                eval = cand_eval;
            }
            report.best_score = report.best_score.max(eval.score);
        }
    }
    report
}

/// Records a finding (deduplicated by signature); returns whether the
/// evaluation was a violation (ending the restart either way — staying on a
/// violation would just rediscover the same family every iteration).
fn record_if_violation(
    report: &mut SearchReport,
    genome: &ChaosGenome,
    eval: &Evaluation,
    restart: usize,
) -> bool {
    if !eval.violation {
        return false;
    }
    report.best_score = report.best_score.max(eval.score);
    let signature = genome.signature();
    if !report.findings.iter().any(|f| f.signature == signature) {
        report
            .trace
            .push(format!("r{restart} VIOLATION {signature}"));
        report.findings.push(Finding {
            genome: genome.clone(),
            signature,
            flags: eval.verdict_flags(),
            score: eval.score,
            restart,
        });
    } else {
        report
            .trace
            .push(format!("r{restart} violation (known) {signature}"));
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny cheap space for debug-build tests: exact protocol, d = 1,
    /// smallest shapes.
    fn tiny_config(seed: u64) -> SearchConfig {
        SearchConfig {
            master_seed: seed,
            restarts: 2,
            iters: 3,
            space: SearchSpace {
                protocols: vec![Protocol::Exact],
                f_range: (1, 1),
                d_range: (1, 1),
                n_slack: 1,
                alpha_max: 2.0,
                max_steps: 100_000,
                directed_topologies: Vec::new(),
            },
        }
    }

    /// A cheap digraph space: both directed kinds over small topologies.
    fn directed_config(seed: u64) -> SearchConfig {
        SearchConfig {
            master_seed: seed,
            restarts: 2,
            iters: 4,
            space: SearchSpace {
                protocols: vec![Protocol::DirectedExact, Protocol::DirectedExactLb],
                f_range: (1, 1),
                d_range: (1, 1),
                n_slack: 1,
                alpha_max: 2.0,
                max_steps: 100_000,
                directed_topologies: vec!["complete".to_string(), "ring".to_string()],
            },
        }
    }

    #[test]
    fn same_seed_produces_a_byte_identical_trace() {
        let a = search(&tiny_config(42));
        let b = search(&tiny_config(42));
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.evaluations, b.evaluations);
        assert!(a.evaluations >= 2, "both restarts evaluated");
    }

    #[test]
    fn different_seeds_explore_differently() {
        let a = search(&tiny_config(1));
        let b = search(&tiny_config(2));
        assert_ne!(a.trace, b.trace);
    }

    #[test]
    fn the_default_space_has_no_directed_protocols() {
        // The seed-0 CI search trajectory is byte-stable only because the
        // digraph operators stay locked behind the explicit `--protocols`
        // opt-in: the default space must never grow a directed kind without
        // regenerating every pinned chaos artefact.
        assert!(!SearchSpace::default().has_directed());
    }

    #[test]
    fn directed_spaces_search_deterministically_over_digraph_genomes() {
        let a = search(&directed_config(9));
        let b = search(&directed_config(9));
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.evaluations, b.evaluations);
        assert!(
            a.trace.iter().any(|line| line.contains("directed-exact")),
            "directed spaces must actually sample directed genomes: {:?}",
            a.trace
        );
    }
}
