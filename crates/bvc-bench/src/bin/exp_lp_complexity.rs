//! E7 — Section 2.2: size and cost of the Γ(S) linear program.
//!
//! The paper derives that finding a point of `Γ(S)` takes a linear program
//! with `d + C(n, n−f)(n−f)` variables and `C(n, n−f)(d+1+n−f)` constraints —
//! polynomial in `n` and `d` for fixed `f`, but exponential in `f`.  This
//! experiment reports the LP dimensions predicted by the formula, the
//! dimensions actually constructed by our implementation, and the measured
//! wall-clock time to solve it.

use bvc_bench::{experiment_header, fmt, honest_workload, Table};
use bvc_geometry::{gamma_point, lp_size, PointMultiset};
use std::time::Instant;

fn main() {
    experiment_header(
        "E7: Γ(S) linear-program size and solve time",
        "the joint LP has d + C(n,n−f)(n−f) variables and C(n,n−f)(d+1+n−f) constraints \
         (polynomial for fixed f, exponential in f)",
    );

    let mut table = Table::new(&[
        "n",
        "f",
        "d",
        "C(n,n−f)",
        "variables (formula)",
        "constraints (formula)",
        "solve time (ms)",
    ]);
    for &(f, d) in &[(1usize, 2usize), (1, 3), (2, 2)] {
        let n_min = ((d + 1) * f + 1).max(3 * f + 1);
        for n in n_min..=(n_min + 3) {
            let (vars, cons) = lp_size(n, f, d);
            let subsets = bvc_geometry::combinatorics::binomial(n, n - f);
            let points = honest_workload(1000 + n as u64, n, d);
            let multiset = PointMultiset::new(points);
            let start = Instant::now();
            let point = gamma_point(&multiset, f);
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            assert!(point.is_some(), "Lemma 1 guarantees a point exists");
            table.row(&[
                n.to_string(),
                f.to_string(),
                d.to_string(),
                subsets.to_string(),
                vars.to_string(),
                cons.to_string(),
                fmt(elapsed, 2),
            ]);
        }
    }
    table.print();
    println!();
    println!(
        "Solve time grows with C(n, n−f) exactly as the formula predicts: moderate for f = 1 \
         (C(n,n−1) = n) and visibly steeper for f = 2, matching the paper's remark that the \
         complexity is polynomial for fixed f but high when f grows with n."
    );
}
