//! High-level runners: configure a system, attack it, run it, judge it.
//!
//! The runners wire together the protocol implementations, the simulated
//! network executors and the adversary strategies, and score the outcome
//! against the paper's correctness conditions:
//!
//! * [`ExactBvcRun`] — Exact BVC over the synchronous executor
//!   (Agreement, Validity, Termination — Section 2.2).
//! * [`ApproxBvcRun`] — Approximate BVC over the asynchronous simulator
//!   (ε-Agreement, Validity, Termination — Section 3.2).
//! * [`RestrictedSyncRun`] / [`RestrictedAsyncRun`] — the Section 4
//!   restricted-round algorithms.
//!
//! Every runner follows the same builder pattern: construct with
//! `builder(n, f, d)`, supply the `n − f` honest inputs, pick an adversary, a
//! seed and (for the approximate algorithms) an ε, then call `run()`.  The
//! result carries the honest decisions, a [`Verdict`], and execution
//! statistics.

use crate::approx::{ApproxBvcProcess, ApproxOutput, ByzantineApproxProcess, UpdateRule};
use crate::config::{BvcConfig, BvcError, Setting};
use crate::exact::{ByzantineExactProcess, ExactBvcProcess, ExactMsg};
use crate::iterative::{ByzantineIterativeProcess, IterativeBvcProcess};
use crate::restricted::{
    ByzantineRestrictedAsync, ByzantineRestrictedSync, RestrictedAsyncProcess,
    RestrictedSyncProcess, StateMsg,
};
use crate::validity::{require_with_mode, validity_check, ValidityCheck, ValidityMode};
use bvc_adversary::{ByzantineStrategy, PointForge};
use bvc_geometry::{GammaCache, Point, PointMultiset};
use bvc_net::{
    AsyncNetwork, AsyncProcess, DeliveryPolicy, ExecutionStats, FaultPlan, SyncNetwork, SyncProcess,
};
use bvc_topology::{Sufficiency, Topology};
use std::sync::Arc;

/// How an execution scored against the paper's correctness conditions.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Exact algorithms: all honest decisions identical.  Approximate
    /// algorithms: all honest decisions within ε per coordinate.
    pub agreement: bool,
    /// Every honest decision satisfies the run's validity condition with
    /// respect to the honest inputs (strict hull membership by default; the
    /// relaxed conditions of arXiv:1601.08067 when the run declares them).
    pub validity: bool,
    /// Every honest process decided before the executor's budget ran out.
    pub termination: bool,
    /// Largest L∞ distance between two honest decisions.
    pub max_pairwise_distance: f64,
}

impl Verdict {
    /// `true` when all three conditions hold.
    pub fn all_hold(&self) -> bool {
        self.agreement && self.validity && self.termination
    }

    fn score(
        decisions: &[Point],
        honest_inputs: &[Point],
        terminated: bool,
        tolerance: f64,
        mode: &ValidityMode,
    ) -> Self {
        if decisions.is_empty() || !terminated {
            return Self {
                agreement: false,
                validity: false,
                termination: false,
                max_pairwise_distance: f64::INFINITY,
            };
        }
        let mut max_distance: f64 = 0.0;
        for i in 0..decisions.len() {
            for j in (i + 1)..decisions.len() {
                max_distance = max_distance.max(decisions[i].linf_distance(&decisions[j]));
            }
        }
        let honest = PointMultiset::new(honest_inputs.to_vec());
        let validity = decisions.iter().all(|d| mode.contains(&honest, d));
        Self {
            agreement: max_distance <= tolerance,
            validity,
            termination: true,
            max_pairwise_distance: max_distance,
        }
    }
}

fn validate_inputs(config: &BvcConfig, honest_inputs: &[Point]) -> Result<(), BvcError> {
    if config.f == 0 {
        return Err(BvcError::InvalidParameter(
            "the runners model at least one Byzantine process; use f >= 1".into(),
        ));
    }
    validate_input_shape(config, honest_inputs)
}

/// Input-shape validation shared with the iterative runner (which, unlike the
/// paper's four algorithms, also supports the fault-free `f = 0` baseline).
fn validate_input_shape(config: &BvcConfig, honest_inputs: &[Point]) -> Result<(), BvcError> {
    if honest_inputs.len() != config.honest_count() {
        return Err(BvcError::InvalidParameter(format!(
            "expected {} honest inputs (n − f), got {}",
            config.honest_count(),
            honest_inputs.len()
        )));
    }
    if let Some(bad) = honest_inputs.iter().find(|p| p.dim() != config.d) {
        return Err(BvcError::InvalidParameter(format!(
            "input {bad} has dimension {}, expected {}",
            bad.dim(),
            config.d
        )));
    }
    Ok(())
}

/// Resolves a builder's optional topology against the run's process count
/// (defaulting to the paper's complete graph).
fn resolve_topology(topology: Option<Topology>, n: usize) -> Result<Topology, BvcError> {
    match topology {
        None => Ok(Topology::complete(n)),
        Some(t) if t.len() == n => Ok(t),
        Some(t) => Err(BvcError::InvalidParameter(format!(
            "topology covers {} processes, run has n = {n}",
            t.len()
        ))),
    }
}

fn make_forge(
    strategy: ByzantineStrategy,
    config: &BvcConfig,
    seed: u64,
    index: usize,
) -> PointForge {
    let mut forge = PointForge::new(
        strategy,
        config.d,
        config.lower_bound,
        config.upper_bound,
        seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1)),
    );
    forge.set_honest_value(Point::uniform(
        config.d,
        0.5 * (config.lower_bound + config.upper_bound),
    ));
    forge
}

// ---------------------------------------------------------------------------
// Exact BVC (synchronous)
// ---------------------------------------------------------------------------

/// Builder for an Exact BVC execution.
#[derive(Debug, Clone)]
pub struct ExactBvcRunBuilder {
    n: usize,
    f: usize,
    d: usize,
    honest_inputs: Vec<Point>,
    adversary: ByzantineStrategy,
    seed: u64,
    value_bounds: (f64, f64),
    faults: FaultPlan,
    topology: Option<Topology>,
    validity: ValidityMode,
}

impl ExactBvcRunBuilder {
    /// Honest inputs, one per non-faulty process (`n − f` of them).
    pub fn honest_inputs(mut self, inputs: Vec<Point>) -> Self {
        self.honest_inputs = inputs;
        self
    }

    /// The Byzantine strategy of the last `f` processes.
    pub fn adversary(mut self, strategy: ByzantineStrategy) -> Self {
        self.adversary = strategy;
        self
    }

    /// Seed of all randomness in the execution.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A-priori bounds on the input coordinates (defaults to `[0, 1]`).
    pub fn value_bounds(mut self, lower: f64, upper: f64) -> Self {
        self.value_bounds = (lower, upper);
        self
    }

    /// Injected network faults (windows measured in rounds); note that drop,
    /// latency and partition faults step outside the paper's reliable
    /// synchronous model, so the verdict may legitimately fail.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Restricts delivery to a declared topology (the complete graph is the
    /// default).  The paper's algorithm assumes the complete graph, so on an
    /// incomplete topology a failed verdict is expected data, not a bug.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// The validity condition the run is scored against (strict hull
    /// membership by default).  A relaxed mode also relaxes the Step-2
    /// decision rule — the process picks a point of the *relaxed* safe area
    /// when the strict one is empty — and lowers the admission bound to the
    /// relaxed requirement of arXiv:1601.08067.
    pub fn validity_mode(mut self, mode: ValidityMode) -> Self {
        self.validity = mode;
        self
    }

    /// Runs the execution.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are invalid or `n` is below the
    /// Theorem 1 bound `max(3f+1, (d+1)f+1)` (lowered accordingly for
    /// relaxed validity modes).
    pub fn run(self) -> Result<ExactBvcRun, BvcError> {
        let config = BvcConfig::new(self.n, self.f, self.d)?
            .with_value_bounds(self.value_bounds.0, self.value_bounds.1)?;
        require_with_mode(
            Setting::ExactSync,
            &self.validity,
            config.n,
            config.d,
            config.f,
        )?;
        validate_inputs(&config, &self.honest_inputs)?;

        // One Γ cache per run: Step 1 gives all honest processes the same
        // multiset, so the Step-2 decision LP runs once system-wide.
        let gamma_cache = GammaCache::shared();
        let mut processes: Vec<Box<dyn SyncProcess<Msg = ExactMsg, Output = Point>>> = Vec::new();
        for (i, input) in self.honest_inputs.iter().enumerate() {
            processes.push(Box::new(
                ExactBvcProcess::new(config.clone(), i, input.clone())
                    .with_validity_mode(self.validity)
                    .with_gamma_cache(gamma_cache.clone()),
            ));
        }
        for b in 0..config.f {
            let me = config.honest_count() + b;
            let forge = make_forge(self.adversary, &config, self.seed, b);
            processes.push(Box::new(
                ByzantineExactProcess::new(
                    config.clone(),
                    me,
                    Point::uniform(config.d, config.lower_bound),
                    forge,
                )
                .with_gamma_cache(gamma_cache.clone()),
            ));
        }
        let topology = resolve_topology(self.topology, config.n)?;
        let honest: Vec<usize> = (0..config.honest_count()).collect();
        let outcome = SyncNetwork::new(processes, ExactBvcProcess::total_rounds(&config))
            .with_topology(topology)
            .with_faults(self.faults, self.seed)
            .run(&honest);
        let decisions: Vec<Point> = honest
            .iter()
            .filter_map(|&i| outcome.outputs[i].clone())
            .collect();
        let terminated = decisions.len() == honest.len();
        // Exact consensus: agreement means identical decisions (up to LP
        // round-off).
        let verdict = Verdict::score(
            &decisions,
            &self.honest_inputs,
            terminated,
            1e-6,
            &self.validity,
        );
        let validity = validity_check(
            Setting::ExactSync,
            self.validity,
            config.n,
            config.d,
            config.f,
        );
        Ok(ExactBvcRun {
            decisions,
            honest_inputs: self.honest_inputs,
            verdict,
            validity,
            rounds: outcome.rounds,
            stats: outcome.stats,
        })
    }
}

/// A completed Exact BVC execution.
#[derive(Debug, Clone)]
pub struct ExactBvcRun {
    decisions: Vec<Point>,
    honest_inputs: Vec<Point>,
    verdict: Verdict,
    validity: ValidityCheck,
    rounds: usize,
    stats: ExecutionStats,
}

impl ExactBvcRun {
    /// Starts building an execution with `n` processes, `f` Byzantine, inputs
    /// of dimension `d`.
    pub fn builder(n: usize, f: usize, d: usize) -> ExactBvcRunBuilder {
        ExactBvcRunBuilder {
            n,
            f,
            d,
            honest_inputs: Vec::new(),
            adversary: ByzantineStrategy::Equivocate,
            seed: 0,
            value_bounds: (0.0, 1.0),
            faults: FaultPlan::new(),
            topology: None,
            validity: ValidityMode::Strict,
        }
    }

    /// The honest processes' decisions (index = honest process index).
    pub fn decisions(&self) -> &[Point] {
        &self.decisions
    }

    /// The honest inputs the run was configured with.
    pub fn honest_inputs(&self) -> &[Point] {
        &self.honest_inputs
    }

    /// The verdict against Agreement / Validity / Termination.
    pub fn verdict(&self) -> &Verdict {
        &self.verdict
    }

    /// The validity mode the verdict was scored against, with its (possibly
    /// lowered) resource requirement.
    pub fn validity(&self) -> &ValidityCheck {
        &self.validity
    }

    /// Number of synchronous rounds executed.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Message statistics of the execution.
    pub fn stats(&self) -> &ExecutionStats {
        &self.stats
    }
}

// ---------------------------------------------------------------------------
// Approximate BVC (asynchronous)
// ---------------------------------------------------------------------------

/// Builder for an Approximate BVC execution.
#[derive(Debug, Clone)]
pub struct ApproxBvcRunBuilder {
    n: usize,
    f: usize,
    d: usize,
    honest_inputs: Vec<Point>,
    adversary: ByzantineStrategy,
    seed: u64,
    epsilon: f64,
    value_bounds: (f64, f64),
    rule: UpdateRule,
    policy: DeliveryPolicy,
    max_steps: usize,
    faults: FaultPlan,
    topology: Option<Topology>,
    validity: ValidityMode,
}

impl ApproxBvcRunBuilder {
    /// Honest inputs, one per non-faulty process (`n − f` of them).
    pub fn honest_inputs(mut self, inputs: Vec<Point>) -> Self {
        self.honest_inputs = inputs;
        self
    }

    /// The Byzantine strategy of the last `f` processes.
    pub fn adversary(mut self, strategy: ByzantineStrategy) -> Self {
        self.adversary = strategy;
        self
    }

    /// Seed of all randomness (adversary and scheduler).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The ε of ε-agreement (defaults to `0.01`).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// A-priori bounds on the input coordinates (defaults to `[0, 1]`).
    pub fn value_bounds(mut self, lower: f64, upper: f64) -> Self {
        self.value_bounds = (lower, upper);
        self
    }

    /// Which Step-2 subset rule to use (defaults to the Appendix F witness
    /// optimisation).
    pub fn update_rule(mut self, rule: UpdateRule) -> Self {
        self.rule = rule;
        self
    }

    /// The asynchronous scheduling adversary (defaults to
    /// [`DeliveryPolicy::RandomFair`]).
    pub fn delivery_policy(mut self, policy: DeliveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Cap on scheduler delivery steps (defaults to 5,000,000).
    pub fn max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Injected network faults (windows measured in scheduler ticks); every
    /// fault expires, so the asynchronous fairness contract still holds after
    /// the plan's quiescence horizon.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Restricts delivery to a declared topology (the complete graph is the
    /// default); on an incomplete topology the AAD exchange may starve, which
    /// the verdict records.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// The validity condition the run is scored against (strict by default).
    /// Relaxed modes lower the admission bound to the relaxed requirement;
    /// the Step-2 update rule itself is unchanged (a relaxed update rule for
    /// the iterative algorithms is a recorded ROADMAP follow-up), so below
    /// the strict threshold the verdict records whatever actually happens.
    pub fn validity_mode(mut self, mode: ValidityMode) -> Self {
        self.validity = mode;
        self
    }

    /// Runs the execution.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are invalid or `n` is below the
    /// Theorem 4 bound `(d+2)f + 1` (lowered accordingly for relaxed
    /// validity modes).
    pub fn run(self) -> Result<ApproxBvcRun, BvcError> {
        let config = BvcConfig::new(self.n, self.f, self.d)?
            .with_epsilon(self.epsilon)?
            .with_value_bounds(self.value_bounds.0, self.value_bounds.1)?;
        require_with_mode(
            Setting::ApproxAsync,
            &self.validity,
            config.n,
            config.d,
            config.f,
        )?;
        validate_inputs(&config, &self.honest_inputs)?;

        // One Γ cache per run: overlapping B_i[t] sets across processes share
        // their Step-2 subset evaluations.
        let gamma_cache = GammaCache::shared();
        let mut processes: Vec<
            Box<dyn AsyncProcess<Msg = crate::aad::AadMsg, Output = ApproxOutput>>,
        > = Vec::new();
        for (i, input) in self.honest_inputs.iter().enumerate() {
            processes.push(Box::new(
                ApproxBvcProcess::new(config.clone(), i, input.clone(), self.rule)
                    .with_gamma_cache(gamma_cache.clone()),
            ));
        }
        for b in 0..config.f {
            let me = config.honest_count() + b;
            let forge = make_forge(self.adversary, &config, self.seed, b);
            processes.push(Box::new(ByzantineApproxProcess::new(
                config.clone(),
                me,
                Point::uniform(config.d, 0.5 * (config.lower_bound + config.upper_bound)),
                self.rule,
                forge,
            )));
        }
        let topology = resolve_topology(self.topology, config.n)?;
        let honest: Vec<usize> = (0..config.honest_count()).collect();
        let outcome = AsyncNetwork::new(processes, self.policy, self.seed, self.max_steps)
            .with_topology(topology)
            .with_faults(self.faults)
            .run(&honest);
        let outputs: Vec<ApproxOutput> = honest
            .iter()
            .filter_map(|&i| outcome.outputs[i].clone())
            .collect();
        let terminated = outputs.len() == honest.len() && outcome.completed;
        let decisions: Vec<Point> = outputs.iter().map(|o| o.decision.clone()).collect();
        let verdict = Verdict::score(
            &decisions,
            &self.honest_inputs,
            terminated,
            config.epsilon,
            &self.validity,
        );
        let validity = validity_check(
            Setting::ApproxAsync,
            self.validity,
            config.n,
            config.d,
            config.f,
        );
        let round_budget = ApproxBvcProcess::round_budget(&config, self.rule);
        Ok(ApproxBvcRun {
            outputs,
            honest_inputs: self.honest_inputs,
            verdict,
            validity,
            round_budget,
            epsilon: config.epsilon,
            stats: outcome.stats,
        })
    }
}

/// A completed Approximate BVC execution.
#[derive(Debug, Clone)]
pub struct ApproxBvcRun {
    outputs: Vec<ApproxOutput>,
    honest_inputs: Vec<Point>,
    verdict: Verdict,
    validity: ValidityCheck,
    round_budget: usize,
    epsilon: f64,
    stats: ExecutionStats,
}

impl ApproxBvcRun {
    /// Starts building an execution with `n` processes, `f` Byzantine, inputs
    /// of dimension `d`.
    pub fn builder(n: usize, f: usize, d: usize) -> ApproxBvcRunBuilder {
        ApproxBvcRunBuilder {
            n,
            f,
            d,
            honest_inputs: Vec::new(),
            adversary: ByzantineStrategy::Equivocate,
            seed: 0,
            epsilon: 0.01,
            value_bounds: (0.0, 1.0),
            rule: UpdateRule::WitnessOptimized,
            policy: DeliveryPolicy::RandomFair,
            max_steps: 5_000_000,
            faults: FaultPlan::new(),
            topology: None,
            validity: ValidityMode::Strict,
        }
    }

    /// The honest processes' decisions.
    pub fn decisions(&self) -> Vec<Point> {
        self.outputs.iter().map(|o| o.decision.clone()).collect()
    }

    /// Full per-process outputs (decision, state history, `|Z_i|` sizes).
    pub fn outputs(&self) -> &[ApproxOutput] {
        &self.outputs
    }

    /// The honest inputs the run was configured with.
    pub fn honest_inputs(&self) -> &[Point] {
        &self.honest_inputs
    }

    /// The verdict against ε-Agreement / Validity / Termination.
    pub fn verdict(&self) -> &Verdict {
        &self.verdict
    }

    /// The validity mode the verdict was scored against, with its (possibly
    /// lowered) resource requirement.
    pub fn validity(&self) -> &ValidityCheck {
        &self.validity
    }

    /// The static round budget of Step 3 for this configuration.
    pub fn round_budget(&self) -> usize {
        self.round_budget
    }

    /// The ε the run was judged against.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Message statistics of the execution.
    pub fn stats(&self) -> &ExecutionStats {
        &self.stats
    }

    /// The per-round range `max_l (Ω_l[t] − µ_l[t])` across the honest
    /// processes, computed from the recorded histories (index 0 is the range
    /// of the inputs).  Used by the convergence experiment.
    pub fn range_history(&self) -> Vec<f64> {
        if self.outputs.is_empty() {
            return Vec::new();
        }
        let rounds = self
            .outputs
            .iter()
            .map(|o| o.history.len())
            .min()
            .unwrap_or(0);
        (0..rounds)
            .map(|t| {
                let states: Vec<Point> =
                    self.outputs.iter().map(|o| o.history[t].clone()).collect();
                PointMultiset::new(states).coordinate_range()
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Restricted-round algorithms (Section 4)
// ---------------------------------------------------------------------------

/// Builder and result for the restricted-round synchronous algorithm.
#[derive(Debug, Clone)]
pub struct RestrictedSyncRunBuilder {
    n: usize,
    f: usize,
    d: usize,
    honest_inputs: Vec<Point>,
    adversary: ByzantineStrategy,
    seed: u64,
    epsilon: f64,
    value_bounds: (f64, f64),
    faults: FaultPlan,
    topology: Option<Topology>,
    validity: ValidityMode,
}

impl RestrictedSyncRunBuilder {
    /// Honest inputs, one per non-faulty process (`n − f` of them).
    pub fn honest_inputs(mut self, inputs: Vec<Point>) -> Self {
        self.honest_inputs = inputs;
        self
    }

    /// The Byzantine strategy of the last `f` processes.
    pub fn adversary(mut self, strategy: ByzantineStrategy) -> Self {
        self.adversary = strategy;
        self
    }

    /// Seed of all randomness in the execution.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The ε of ε-agreement (defaults to `0.01`).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// A-priori bounds on the input coordinates (defaults to `[0, 1]`).
    pub fn value_bounds(mut self, lower: f64, upper: f64) -> Self {
        self.value_bounds = (lower, upper);
        self
    }

    /// Injected network faults (windows measured in rounds).
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Restricts delivery to a declared topology (the complete graph is the
    /// default).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// The validity condition the run is scored against (strict by default).
    /// Relaxed modes lower the admission bound; the update rule itself is
    /// unchanged.
    pub fn validity_mode(mut self, mode: ValidityMode) -> Self {
        self.validity = mode;
        self
    }

    /// Runs the execution.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are invalid or `n < (d+2)f + 1`
    /// (lowered accordingly for relaxed validity modes).
    pub fn run(self) -> Result<RestrictedRun, BvcError> {
        let config = BvcConfig::new(self.n, self.f, self.d)?
            .with_epsilon(self.epsilon)?
            .with_value_bounds(self.value_bounds.0, self.value_bounds.1)?;
        require_with_mode(
            Setting::RestrictedSync,
            &self.validity,
            config.n,
            config.d,
            config.f,
        )?;
        validate_inputs(&config, &self.honest_inputs)?;

        // One Γ cache per run: in a synchronous round every honest process
        // sees the same states, so each round's C(n, n−f) safe-area solves
        // happen once system-wide instead of once per process.
        let gamma_cache = GammaCache::shared();
        let mut processes: Vec<Box<dyn SyncProcess<Msg = StateMsg, Output = Point>>> = Vec::new();
        for (i, input) in self.honest_inputs.iter().enumerate() {
            processes.push(Box::new(
                RestrictedSyncProcess::new(config.clone(), i, input.clone())
                    .with_gamma_cache(gamma_cache.clone()),
            ));
        }
        for b in 0..config.f {
            let me = config.honest_count() + b;
            let forge = make_forge(self.adversary, &config, self.seed, b);
            processes.push(Box::new(ByzantineRestrictedSync::new(
                config.clone(),
                me,
                forge,
            )));
        }
        let topology = resolve_topology(self.topology, config.n)?;
        let honest: Vec<usize> = (0..config.honest_count()).collect();
        let outcome = SyncNetwork::new(processes, RestrictedSyncProcess::total_rounds(&config) + 1)
            .with_topology(topology)
            .with_faults(self.faults, self.seed)
            .run(&honest);
        let decisions: Vec<Point> = honest
            .iter()
            .filter_map(|&i| outcome.outputs[i].clone())
            .collect();
        let terminated = decisions.len() == honest.len();
        let verdict = Verdict::score(
            &decisions,
            &self.honest_inputs,
            terminated,
            config.epsilon,
            &self.validity,
        );
        let validity = validity_check(
            Setting::RestrictedSync,
            self.validity,
            config.n,
            config.d,
            config.f,
        );
        Ok(RestrictedRun {
            decisions,
            verdict,
            validity,
            rounds: outcome.rounds,
            stats: outcome.stats,
        })
    }
}

/// Builder for the restricted-round asynchronous algorithm.
#[derive(Debug, Clone)]
pub struct RestrictedAsyncRunBuilder {
    n: usize,
    f: usize,
    d: usize,
    honest_inputs: Vec<Point>,
    adversary: ByzantineStrategy,
    seed: u64,
    epsilon: f64,
    value_bounds: (f64, f64),
    policy: DeliveryPolicy,
    max_steps: usize,
    faults: FaultPlan,
    topology: Option<Topology>,
    validity: ValidityMode,
}

impl RestrictedAsyncRunBuilder {
    /// Honest inputs, one per non-faulty process (`n − f` of them).
    pub fn honest_inputs(mut self, inputs: Vec<Point>) -> Self {
        self.honest_inputs = inputs;
        self
    }

    /// The Byzantine strategy of the last `f` processes.
    pub fn adversary(mut self, strategy: ByzantineStrategy) -> Self {
        self.adversary = strategy;
        self
    }

    /// Seed of all randomness (adversary and scheduler).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The ε of ε-agreement (defaults to `0.01`).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// A-priori bounds on the input coordinates (defaults to `[0, 1]`).
    pub fn value_bounds(mut self, lower: f64, upper: f64) -> Self {
        self.value_bounds = (lower, upper);
        self
    }

    /// The asynchronous scheduling adversary.
    pub fn delivery_policy(mut self, policy: DeliveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Cap on scheduler delivery steps (defaults to 5,000,000).
    pub fn max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Injected network faults (windows measured in scheduler ticks).
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Restricts delivery to a declared topology (the complete graph is the
    /// default).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// The validity condition the run is scored against (strict by default).
    /// Relaxed modes lower the admission bound; the update rule itself is
    /// unchanged.
    pub fn validity_mode(mut self, mode: ValidityMode) -> Self {
        self.validity = mode;
        self
    }

    /// Runs the execution.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are invalid or `n < (d+4)f + 1`
    /// (lowered accordingly for relaxed validity modes).
    pub fn run(self) -> Result<RestrictedRun, BvcError> {
        let config = BvcConfig::new(self.n, self.f, self.d)?
            .with_epsilon(self.epsilon)?
            .with_value_bounds(self.value_bounds.0, self.value_bounds.1)?;
        require_with_mode(
            Setting::RestrictedAsync,
            &self.validity,
            config.n,
            config.d,
            config.f,
        )?;
        validate_inputs(&config, &self.honest_inputs)?;

        // One Γ cache per run (partial sharing: asynchronous B_i[t] sets
        // overlap without being identical).
        let gamma_cache = GammaCache::shared();
        let mut processes: Vec<Box<dyn AsyncProcess<Msg = StateMsg, Output = Point>>> = Vec::new();
        for (i, input) in self.honest_inputs.iter().enumerate() {
            processes.push(Box::new(
                RestrictedAsyncProcess::new(config.clone(), i, input.clone())
                    .with_gamma_cache(gamma_cache.clone()),
            ));
        }
        for b in 0..config.f {
            let me = config.honest_count() + b;
            let forge = make_forge(self.adversary, &config, self.seed, b);
            processes.push(Box::new(ByzantineRestrictedAsync::new(
                config.clone(),
                me,
                forge,
            )));
        }
        let topology = resolve_topology(self.topology, config.n)?;
        let honest: Vec<usize> = (0..config.honest_count()).collect();
        let outcome = AsyncNetwork::new(processes, self.policy, self.seed, self.max_steps)
            .with_topology(topology)
            .with_faults(self.faults)
            .run(&honest);
        let decisions: Vec<Point> = honest
            .iter()
            .filter_map(|&i| outcome.outputs[i].clone())
            .collect();
        let terminated = decisions.len() == honest.len() && outcome.completed;
        let verdict = Verdict::score(
            &decisions,
            &self.honest_inputs,
            terminated,
            config.epsilon,
            &self.validity,
        );
        let validity = validity_check(
            Setting::RestrictedAsync,
            self.validity,
            config.n,
            config.d,
            config.f,
        );
        Ok(RestrictedRun {
            decisions,
            verdict,
            validity,
            rounds: outcome.stats.steps,
            stats: outcome.stats,
        })
    }
}

/// A completed restricted-round execution (synchronous or asynchronous).
#[derive(Debug, Clone)]
pub struct RestrictedRun {
    decisions: Vec<Point>,
    verdict: Verdict,
    validity: ValidityCheck,
    rounds: usize,
    stats: ExecutionStats,
}

impl RestrictedRun {
    /// Starts building a synchronous restricted-round execution.
    pub fn sync_builder(n: usize, f: usize, d: usize) -> RestrictedSyncRunBuilder {
        RestrictedSyncRunBuilder {
            n,
            f,
            d,
            honest_inputs: Vec::new(),
            adversary: ByzantineStrategy::Equivocate,
            seed: 0,
            epsilon: 0.01,
            value_bounds: (0.0, 1.0),
            faults: FaultPlan::new(),
            topology: None,
            validity: ValidityMode::Strict,
        }
    }

    /// Starts building an asynchronous restricted-round execution.
    pub fn async_builder(n: usize, f: usize, d: usize) -> RestrictedAsyncRunBuilder {
        RestrictedAsyncRunBuilder {
            n,
            f,
            d,
            honest_inputs: Vec::new(),
            adversary: ByzantineStrategy::Equivocate,
            seed: 0,
            epsilon: 0.01,
            value_bounds: (0.0, 1.0),
            policy: DeliveryPolicy::RandomFair,
            max_steps: 5_000_000,
            faults: FaultPlan::new(),
            topology: None,
            validity: ValidityMode::Strict,
        }
    }

    /// The honest processes' decisions.
    pub fn decisions(&self) -> &[Point] {
        &self.decisions
    }

    /// The verdict against ε-Agreement / Validity / Termination.
    pub fn verdict(&self) -> &Verdict {
        &self.verdict
    }

    /// The validity mode the verdict was scored against, with its (possibly
    /// lowered) resource requirement.
    pub fn validity(&self) -> &ValidityCheck {
        &self.validity
    }

    /// Rounds (synchronous) or scheduler steps (asynchronous) executed.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Message statistics of the execution.
    pub fn stats(&self) -> &ExecutionStats {
        &self.stats
    }
}

// ---------------------------------------------------------------------------
// Iterative BVC on an incomplete graph (Vaidya 2013)
// ---------------------------------------------------------------------------

/// Builder for an iterative incomplete-graph BVC execution
/// (see [`crate::iterative`]).
///
/// Unlike the paper's four complete-graph algorithms this runner accepts
/// `f = 0` (the fault-free baseline of the convergence analysis) and imposes
/// no closed-form resilience bound: solvability is governed by the
/// topology's [`iterative_sufficiency`](Topology::iterative_sufficiency)
/// check, whose result the run records.
#[derive(Debug, Clone)]
pub struct IterativeBvcRunBuilder {
    n: usize,
    f: usize,
    d: usize,
    honest_inputs: Vec<Point>,
    adversary: ByzantineStrategy,
    seed: u64,
    epsilon: f64,
    value_bounds: (f64, f64),
    faults: FaultPlan,
    topology: Option<Topology>,
    validity: ValidityMode,
}

impl IterativeBvcRunBuilder {
    /// Honest inputs, one per non-faulty process (`n − f` of them).
    pub fn honest_inputs(mut self, inputs: Vec<Point>) -> Self {
        self.honest_inputs = inputs;
        self
    }

    /// The Byzantine strategy of the last `f` processes (ignored for `f = 0`).
    pub fn adversary(mut self, strategy: ByzantineStrategy) -> Self {
        self.adversary = strategy;
        self
    }

    /// Seed of all randomness in the execution.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The ε of ε-agreement (defaults to `0.01`).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// A-priori bounds on the input coordinates (defaults to `[0, 1]`).
    pub fn value_bounds(mut self, lower: f64, upper: f64) -> Self {
        self.value_bounds = (lower, upper);
        self
    }

    /// Injected network faults (windows measured in rounds).
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The communication topology (defaults to the complete graph).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// The validity condition the run is scored against (strict by default).
    /// The iterative update rule has no relaxed variant (a recorded ROADMAP
    /// follow-up), so the mode affects scoring only: the topology
    /// sufficiency condition keeps its strict dimension — a sparser graph
    /// does not become expected-solvable just because the verdict is scored
    /// leniently, and anticipated convergence failures stay flagged up
    /// front.
    pub fn validity_mode(mut self, mode: ValidityMode) -> Self {
        self.validity = mode;
        self
    }

    /// Runs the execution.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are structurally invalid or the
    /// topology size differs from `n`.  A topology that *violates* the
    /// sufficiency condition is not an error: the run executes and the
    /// recorded [`Sufficiency`] tells the caller the verdict was
    /// expected-unsolvable.
    pub fn run(self) -> Result<IterativeBvcRun, BvcError> {
        let config = BvcConfig::new(self.n, self.f, self.d)?
            .with_epsilon(self.epsilon)?
            .with_value_bounds(self.value_bounds.0, self.value_bounds.1)?;
        validate_input_shape(&config, &self.honest_inputs)?;
        let topology = Arc::new(resolve_topology(self.topology, config.n)?);
        let sufficiency = topology.iterative_sufficiency(config.f, config.d);

        // One Γ cache per run: neighborhood multisets overlap across
        // processes and recur across rounds once the states cluster.
        let gamma_cache = GammaCache::shared();
        let mut processes: Vec<Box<dyn SyncProcess<Msg = StateMsg, Output = Point>>> = Vec::new();
        for (i, input) in self.honest_inputs.iter().enumerate() {
            processes.push(Box::new(
                IterativeBvcProcess::new(config.clone(), i, input.clone(), Arc::clone(&topology))
                    .with_gamma_cache(gamma_cache.clone()),
            ));
        }
        for b in 0..config.f {
            let me = config.honest_count() + b;
            let forge = make_forge(self.adversary, &config, self.seed, b);
            processes.push(Box::new(ByzantineIterativeProcess::new(
                me,
                Arc::clone(&topology),
                forge,
            )));
        }
        let honest: Vec<usize> = (0..config.honest_count()).collect();
        let outcome = SyncNetwork::new(processes, IterativeBvcProcess::total_rounds(&config))
            .with_topology(topology.as_ref().clone())
            .with_faults(self.faults, self.seed)
            .run(&honest);
        let decisions: Vec<Point> = honest
            .iter()
            .filter_map(|&i| outcome.outputs[i].clone())
            .collect();
        let terminated = decisions.len() == honest.len();
        let verdict = Verdict::score(
            &decisions,
            &self.honest_inputs,
            terminated,
            config.epsilon,
            &self.validity,
        );
        Ok(IterativeBvcRun {
            decisions,
            honest_inputs: self.honest_inputs,
            verdict,
            validity: self.validity,
            rounds: outcome.rounds,
            stats: outcome.stats,
            sufficiency,
            round_budget: crate::iterative::iterative_round_budget(&config),
            topology: topology.as_ref().clone(),
        })
    }
}

/// A completed iterative incomplete-graph execution.
#[derive(Debug, Clone)]
pub struct IterativeBvcRun {
    decisions: Vec<Point>,
    honest_inputs: Vec<Point>,
    verdict: Verdict,
    validity: ValidityMode,
    rounds: usize,
    stats: ExecutionStats,
    sufficiency: Sufficiency,
    round_budget: usize,
    topology: Topology,
}

impl IterativeBvcRun {
    /// Starts building an execution with `n` processes, `f` Byzantine, inputs
    /// of dimension `d`.
    pub fn builder(n: usize, f: usize, d: usize) -> IterativeBvcRunBuilder {
        IterativeBvcRunBuilder {
            n,
            f,
            d,
            honest_inputs: Vec::new(),
            adversary: ByzantineStrategy::Equivocate,
            seed: 0,
            epsilon: 0.01,
            value_bounds: (0.0, 1.0),
            faults: FaultPlan::new(),
            topology: None,
            validity: ValidityMode::Strict,
        }
    }

    /// The honest processes' decisions.
    pub fn decisions(&self) -> &[Point] {
        &self.decisions
    }

    /// The honest inputs the run was configured with.
    pub fn honest_inputs(&self) -> &[Point] {
        &self.honest_inputs
    }

    /// The verdict against ε-Agreement / Validity / Termination.
    pub fn verdict(&self) -> &Verdict {
        &self.verdict
    }

    /// The validity mode the verdict was scored against (the iterative
    /// protocol's resource signal is [`sufficiency`](Self::sufficiency),
    /// evaluated at the mode's effective dimension).
    pub fn validity_mode(&self) -> &ValidityMode {
        &self.validity
    }

    /// The up-front graph-condition check: whether convergence was expected
    /// on this topology at all.
    pub fn sufficiency(&self) -> &Sufficiency {
        &self.sufficiency
    }

    /// The static round budget of the execution.
    pub fn round_budget(&self) -> usize {
        self.round_budget
    }

    /// The topology the run executed on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of synchronous rounds executed.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Message statistics of the execution.
    pub fn stats(&self) -> &ExecutionStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_inputs() -> Vec<Point> {
        vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.0, 1.0]),
            Point::new(vec![1.0, 1.0]),
        ]
    }

    #[test]
    fn exact_run_builder_happy_path() {
        let run = ExactBvcRun::builder(5, 1, 2)
            .honest_inputs(square_inputs())
            .adversary(ByzantineStrategy::FixedOutlier)
            .seed(7)
            .run()
            .expect("parameters satisfy the bound");
        assert!(run.verdict().all_hold(), "verdict: {:?}", run.verdict());
        assert_eq!(run.decisions().len(), 4);
        assert!(run.rounds() <= 4);
        assert!(run.stats().messages_delivered > 0);
    }

    #[test]
    fn exact_run_rejects_insufficient_processes() {
        // d = 3, f = 1 requires n ≥ 5.
        let err = ExactBvcRun::builder(4, 1, 3)
            .honest_inputs(vec![
                Point::new(vec![0.0, 0.0, 0.0]),
                Point::new(vec![1.0, 0.0, 0.0]),
                Point::new(vec![0.0, 1.0, 0.0]),
            ])
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            BvcError::InsufficientProcesses { required: 5, .. }
        ));
    }

    #[test]
    fn exact_run_rejects_wrong_input_count() {
        let err = ExactBvcRun::builder(5, 1, 2)
            .honest_inputs(vec![Point::new(vec![0.0, 0.0])])
            .run()
            .unwrap_err();
        assert!(matches!(err, BvcError::InvalidParameter(_)));
    }

    #[test]
    fn exact_run_rejects_zero_faults() {
        let err = ExactBvcRun::builder(3, 0, 2)
            .honest_inputs(square_inputs()[..3].to_vec())
            .run()
            .unwrap_err();
        assert!(matches!(err, BvcError::InvalidParameter(_)));
    }

    #[test]
    fn approx_run_builder_happy_path() {
        let run = ApproxBvcRun::builder(5, 1, 2)
            .honest_inputs(square_inputs())
            .adversary(ByzantineStrategy::AntiConvergence)
            .epsilon(0.1)
            .seed(3)
            .run()
            .expect("parameters satisfy the bound");
        assert!(run.verdict().all_hold(), "verdict: {:?}", run.verdict());
        assert!(run.verdict().max_pairwise_distance <= 0.1);
        assert!(run.round_budget() >= 2);
        let ranges = run.range_history();
        assert!(!ranges.is_empty());
        assert!(ranges.last().unwrap() <= &0.1);
    }

    #[test]
    fn approx_run_rejects_insufficient_processes() {
        let err = ApproxBvcRun::builder(4, 1, 2)
            .honest_inputs(square_inputs()[..3].to_vec())
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            BvcError::InsufficientProcesses { required: 5, .. }
        ));
    }

    #[test]
    fn restricted_sync_run_happy_path() {
        let run = RestrictedRun::sync_builder(5, 1, 2)
            .honest_inputs(square_inputs())
            .adversary(ByzantineStrategy::Equivocate)
            .epsilon(0.1)
            .seed(5)
            .run()
            .expect("parameters satisfy the bound");
        assert!(run.verdict().all_hold(), "verdict: {:?}", run.verdict());
    }

    #[test]
    fn restricted_async_run_happy_path() {
        // d = 1, f = 1 requires n ≥ 6 for the restricted asynchronous variant.
        let inputs = vec![
            Point::new(vec![0.0]),
            Point::new(vec![0.25]),
            Point::new(vec![0.5]),
            Point::new(vec![0.75]),
            Point::new(vec![1.0]),
        ];
        let run = RestrictedRun::async_builder(6, 1, 1)
            .honest_inputs(inputs)
            .adversary(ByzantineStrategy::AntiConvergence)
            .epsilon(0.1)
            .seed(9)
            .run()
            .expect("parameters satisfy the bound");
        assert!(run.verdict().all_hold(), "verdict: {:?}", run.verdict());
    }

    #[test]
    fn restricted_async_rejects_below_bound() {
        let err = RestrictedRun::async_builder(5, 1, 1)
            .honest_inputs(vec![
                Point::new(vec![0.0]),
                Point::new(vec![0.5]),
                Point::new(vec![0.75]),
                Point::new(vec![1.0]),
            ])
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            BvcError::InsufficientProcesses { required: 6, .. }
        ));
    }

    #[test]
    fn iterative_run_on_sufficient_complete_graph_converges() {
        // d = 1, f = 1: the sufficiency condition on K_n needs n ≥ 6.
        let inputs: Vec<Point> = (0..5).map(|i| Point::new(vec![i as f64 / 4.0])).collect();
        let run = IterativeBvcRun::builder(6, 1, 1)
            .honest_inputs(inputs)
            .adversary(ByzantineStrategy::AntiConvergence)
            .epsilon(0.05)
            .seed(3)
            .run()
            .expect("structurally valid");
        assert!(run.sufficiency().is_satisfied());
        assert!(run.verdict().all_hold(), "verdict: {:?}", run.verdict());
        assert!(run.topology().is_complete());
        assert_eq!(run.rounds(), run.round_budget() + 1);
    }

    #[test]
    fn iterative_run_flags_insufficient_topologies_up_front() {
        let inputs: Vec<Point> = (0..5).map(|i| Point::new(vec![i as f64 / 4.0])).collect();
        let run = IterativeBvcRun::builder(6, 1, 1)
            .honest_inputs(inputs)
            .adversary(ByzantineStrategy::FixedOutlier)
            .epsilon(0.05)
            .topology(Topology::ring(6))
            .run()
            .expect("a violated condition is data, not an error");
        assert!(
            matches!(run.sufficiency(), Sufficiency::Violated(_)),
            "the ring cannot satisfy the condition with f = 1"
        );
        // Validity survives on any topology: the Γ-trimmed update never
        // leaves the hull of honest values.
        assert!(run.verdict().validity, "verdict: {:?}", run.verdict());
    }

    #[test]
    fn iterative_run_accepts_the_fault_free_baseline() {
        let inputs: Vec<Point> = (0..6).map(|i| Point::new(vec![i as f64 / 5.0])).collect();
        let run = IterativeBvcRun::builder(6, 0, 1)
            .honest_inputs(inputs)
            .epsilon(0.05)
            .topology(Topology::ring(6))
            .run()
            .expect("f = 0 is allowed for the iterative runner");
        assert!(run.sufficiency().is_satisfied());
        assert!(run.verdict().all_hold(), "verdict: {:?}", run.verdict());
    }

    #[test]
    fn iterative_run_rejects_topology_size_mismatch() {
        let err = IterativeBvcRun::builder(6, 1, 1)
            .honest_inputs((0..5).map(|i| Point::new(vec![i as f64 / 4.0])).collect())
            .topology(Topology::ring(5))
            .run()
            .unwrap_err();
        assert!(matches!(err, BvcError::InvalidParameter(_)));
    }

    #[test]
    fn exact_strict_rejects_below_threshold_but_relaxed_admits() {
        // n = 8 < max(3f+1, (d+1)f+1) = 9 at f = 2, d = 3.
        let inputs: Vec<Point> = (0..6)
            .map(|i| {
                Point::new(vec![
                    i as f64 / 5.0,
                    (5 - i) as f64 / 5.0,
                    0.3 + 0.1 * i as f64,
                ])
            })
            .collect();
        let err = ExactBvcRun::builder(8, 2, 3)
            .honest_inputs(inputs.clone())
            .run()
            .unwrap_err();
        assert!(matches!(
            err,
            BvcError::InsufficientProcesses { required: 9, .. }
        ));
        // k = 1 relaxation admits at 3f+1 = 7 and the decoupled trimmed
        // -centre rule always terminates there.
        let run = ExactBvcRun::builder(8, 2, 3)
            .honest_inputs(inputs)
            .adversary(ByzantineStrategy::FixedOutlier)
            .seed(1)
            .validity_mode(ValidityMode::KRelaxed(1))
            .run()
            .expect("relaxed admission");
        assert_eq!(run.validity().required_n, 7);
        assert!(run.validity().satisfied);
        assert!(run.verdict().all_hold(), "verdict: {:?}", run.verdict());
    }

    #[test]
    fn alpha_zero_mode_scores_like_strict_above_threshold() {
        let strict = ExactBvcRun::builder(5, 1, 2)
            .honest_inputs(square_inputs())
            .seed(7)
            .run()
            .unwrap();
        let zero = ExactBvcRun::builder(5, 1, 2)
            .honest_inputs(square_inputs())
            .seed(7)
            .validity_mode(ValidityMode::AlphaScaled(0.0))
            .run()
            .unwrap();
        assert_eq!(strict.verdict(), zero.verdict());
        for (a, b) in strict.decisions().iter().zip(zero.decisions()) {
            assert_eq!(a.coords(), b.coords(), "α = 0 decisions are bit-equal");
        }
        assert_eq!(zero.validity().required_n, 4, "strict bound at α = 0");
    }

    #[test]
    fn iterative_relaxed_mode_scores_only_and_keeps_strict_sufficiency() {
        // d = 2, f = 1 on K_6: the strict sufficiency condition on K_n is
        // n ≥ (2d+3)f+1 = 8, so the check is violated.  A relaxed validity
        // mode must NOT loosen it — the iterative update rule itself is
        // unchanged, so convergence is no more likely under lenient scoring
        // and the run must stay flagged expected-unsolvable.
        let inputs: Vec<Point> = (0..5)
            .map(|i| Point::new(vec![i as f64 / 4.0, (4 - i) as f64 / 4.0]))
            .collect();
        let relaxed = IterativeBvcRun::builder(6, 1, 2)
            .honest_inputs(inputs)
            .epsilon(0.2)
            .seed(2)
            .validity_mode(ValidityMode::KRelaxed(1))
            .run()
            .unwrap();
        assert!(matches!(relaxed.sufficiency(), Sufficiency::Violated(_)));
        assert_eq!(relaxed.validity_mode(), &ValidityMode::KRelaxed(1));
    }

    #[test]
    fn verdict_all_hold_logic() {
        let verdict = Verdict {
            agreement: true,
            validity: true,
            termination: false,
            max_pairwise_distance: 0.0,
        };
        assert!(!verdict.all_hold());
    }
}
