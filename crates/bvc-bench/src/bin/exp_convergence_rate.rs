//! E5 — Convergence rate: measured contraction vs the `(1 − γ)^t` bound.
//!
//! The proof of Theorem 5 guarantees that the per-coordinate range of the
//! non-faulty states satisfies `ρ[t] ≤ (1 − γ)^t ρ[0]` with
//! `γ = 1/(n·C(n,n−f))` (equation (13)), improved to `γ = 1/n²` by the
//! witness optimisation of Appendix F.  This experiment runs the asynchronous
//! algorithm under an anti-convergence adversary, records the measured range
//! after each round, and prints it next to both analytical bounds.

use bvc_adversary::{ByzantineStrategy, PointForge};
use bvc_bench::{experiment_header, fmt, honest_workload, Table};
use bvc_core::{
    gamma, gamma_witness_optimized, BvcConfig, BvcSession, ByzantineRestrictedSync, ProtocolKind,
    RestrictedSyncProcess, RunConfig, UpdateRule,
};
use bvc_geometry::PointMultiset;
use bvc_net::{Delivery, ProcessId, SyncProcess};

fn main() {
    experiment_header(
        "E5: measured contraction vs the (1 − γ)^t bound",
        "ρ[t] ≤ (1−γ)^t ρ[0] with γ = 1/(n·C(n,n−f)) (eq. 13); γ = 1/n² with the Appendix F \
         witness optimisation; measured contraction is expected to be much faster than the bound",
    );

    let (n, f, d) = (5usize, 1usize, 2usize);
    let eps = 0.05;
    let inputs = honest_workload(777, n - f, d);
    // Scheduling adversary: starve all traffic from honest process p1 so the
    // remaining processes complete rounds with differing B sets — otherwise
    // the reliable-broadcast consistency makes every honest process see the
    // same tuples and the spread collapses to zero after a single round.
    let run = BvcSession::new(
        ProtocolKind::Approx,
        RunConfig::new(n, f, d)
            .honest_inputs(inputs)
            .adversary(ByzantineStrategy::AntiConvergence)
            .epsilon(eps)
            .update_rule(UpdateRule::WitnessOptimized)
            .delivery_policy(bvc_net::DeliveryPolicy::DelayFrom(vec![
                bvc_net::ProcessId::new(0),
            ]))
            .seed(99),
    )
    .expect("parameters satisfy the bound")
    .run();

    let ranges = run.range_history();
    let rho0 = ranges[0];
    let g_full = gamma(n, f);
    let g_wit = gamma_witness_optimized(n);

    println!(
        "n = {n}, f = {f}, d = {d}, ε = {eps}; γ_full = {:.6}, γ_witness = {:.6}, ρ[0] = {:.4}",
        g_full, g_wit, rho0
    );
    println!(
        "round budget (Step 3): {} rounds\n",
        run.round_budget().expect("approx budget")
    );

    let mut table = Table::new(&[
        "round t",
        "measured ρ[t]",
        "bound (1−γ_full)^t ρ[0]",
        "bound (1−γ_wit)^t ρ[0]",
        "measured within bound",
    ]);
    let show = ranges.len().min(16);
    for (t, &measured) in ranges.iter().enumerate().take(show) {
        let bound_full = (1.0 - g_full).powi(t as i32) * rho0;
        let bound_wit = (1.0 - g_wit).powi(t as i32) * rho0;
        table.row(&[
            t.to_string(),
            fmt(measured, 6),
            fmt(bound_full, 6),
            fmt(bound_wit, 6),
            bvc_bench::mark(measured <= bound_full + 1e-9),
        ]);
    }
    table.print();
    if ranges.len() > show {
        let last = ranges.len() - 1;
        println!(
            "... ({} more rounds) final ρ[{}] = {:.8}",
            ranges.len() - show,
            last,
            ranges[last]
        );
    }
    println!();
    println!(
        "The measured range never exceeds the analytical bound, and in practice contracts far \
         faster: the reliable-broadcast layer of the AAD exchange makes the Byzantine process's \
         value consistent at every honest process, so in this small system the honest B sets \
         coincide and the states collapse to a single point after one round — the bound only \
         credits a single common weight γ per round."
    );

    // -----------------------------------------------------------------------
    // Part 2: the restricted synchronous algorithm, where the adversary's
    // per-receiver equivocation enters B_i directly (no reliable broadcast),
    // so the honest states genuinely differ and the contraction is visible
    // round by round.
    // -----------------------------------------------------------------------
    println!();
    println!("### restricted synchronous rounds under per-receiver equivocation");
    println!();
    let (n, f, d) = (5usize, 1usize, 2usize);
    let config = BvcConfig::new(n, f, d)
        .expect("valid parameters")
        .with_epsilon(eps)
        .expect("valid epsilon");
    let inputs = honest_workload(4242, n - f, d);
    let mut honest: Vec<RestrictedSyncProcess> = inputs
        .iter()
        .enumerate()
        .map(|(i, p)| RestrictedSyncProcess::new(config.clone(), i, p.clone()))
        .collect();
    let mut forge = PointForge::new(ByzantineStrategy::AntiConvergence, d, 0.0, 1.0, 5);
    forge.set_honest_value(bvc_geometry::Point::uniform(d, 0.5));
    let mut byz = ByzantineRestrictedSync::new(config.clone(), n - 1, forge);

    // Manual lock-step loop so the concrete process histories stay accessible.
    let rounds = 20usize;
    let mut inboxes: Vec<Vec<Delivery<bvc_core::StateMsg>>> = vec![Vec::new(); n];
    for round in 1..=rounds {
        let mut next: Vec<Vec<Delivery<bvc_core::StateMsg>>> = vec![Vec::new(); n];
        for (i, process) in honest.iter_mut().enumerate() {
            for out in process.round(round, &inboxes[i]) {
                next[out.to.index()].push(Delivery::new(ProcessId::new(i), out.msg));
            }
        }
        for out in byz.round(round, &inboxes[n - 1]) {
            next[out.to.index()].push(Delivery::new(ProcessId::new(n - 1), out.msg));
        }
        for inbox in next.iter_mut() {
            inbox.sort_by_key(|d| d.from.index());
        }
        inboxes = next;
    }

    let g = gamma(n, f);
    let histories: Vec<&[bvc_geometry::Point]> = honest.iter().map(|p| p.history()).collect();
    let measured: Vec<f64> = (0..rounds.min(histories[0].len()))
        .map(|t| {
            PointMultiset::new(histories.iter().map(|h| h[t].clone()).collect()).coordinate_range()
        })
        .collect();
    let rho0 = measured[0];
    let mut table = Table::new(&[
        "round t",
        "measured ρ[t]",
        "bound (1−γ)^t ρ[0]",
        "measured within bound",
    ]);
    for (t, &m) in measured.iter().enumerate().take(13) {
        let bound = (1.0 - g).powi(t as i32) * rho0;
        table.row(&[
            t.to_string(),
            fmt(m, 6),
            fmt(bound, 6),
            bvc_bench::mark(m <= bound + 1e-9),
        ]);
    }
    table.print();
    println!();
    println!(
        "Here the spread persists across rounds (the equivocating process feeds different corner \
         values into different honest B sets each round) and contracts geometrically, staying \
         under the (1−γ)^t envelope of equation (13) — with a much better empirical rate than \
         the worst-case γ."
    );
}
