//! Convex hulls of point multisets, represented implicitly.
//!
//! The consensus algorithms never need an explicit facet representation of a
//! convex hull; they only need to answer two questions about `H(T)`, the hull
//! of a multiset `T`:
//!
//! 1. *membership*: is a given point `p` inside `H(T)`?
//! 2. *witness*: exhibit convex-combination weights showing `p ∈ H(T)`.
//!
//! Both reduce to a small linear-programming feasibility problem (find
//! `α ≥ 0`, `Σα = 1`, `Σ α_i t_i = p`), which is how Section 2.2 of the paper
//! treats them.  Membership runs the solver in feasibility-only mode (no
//! witness extraction) and is preceded by two exact short-circuits — a
//! bounding-box reject and a generator-equality accept — that dispose of most
//! queries the Γ engine generates without touching the solver at all.
//!
//! This module also provides the common-point query used by the Tverberg
//! search and the safe-area operator: a single LP that decides whether
//! several hulls share a point and, if so, produces one.  Next to the full
//! joint LP ([`ConvexHull::common_point`]) there is an active-set variant
//! ([`ConvexHull::common_point_lazy`]) that solves a small joint LP over a
//! growing working set of hulls and verifies candidates against the rest
//! with cheap membership tests — the workhorse of the Γ engine, where the
//! intersection of dozens of hulls is typically pinned down by a handful of
//! them.

use crate::multiset::PointMultiset;
use crate::point::Point;
use bvc_lp::{LinearProgram, Objective, Relation, SolveStatus};
use std::collections::HashMap;

/// Tolerance used when verifying convex-combination witnesses.
pub const HULL_TOLERANCE: f64 = 1e-6;

/// Tolerance under which a query point is considered *equal* to a generator
/// (the generator-equality accept).  Chosen far below the LP feasibility
/// threshold so the short-circuit can never contradict the solver.
const GENERATOR_EQ_TOLERANCE: f64 = 1e-12;

/// A convex hull `H(T)` of a multiset of points, represented implicitly by its
/// generating points (plus their cached axis-aligned bounding box).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexHull {
    generators: PointMultiset,
    /// Per-coordinate minimum of the generators.
    lower: Vec<f64>,
    /// Per-coordinate maximum of the generators.
    upper: Vec<f64>,
}

impl ConvexHull {
    /// Creates the hull of the given generating multiset.
    pub fn new(generators: PointMultiset) -> Self {
        let lower = generators.coordinate_min().into_coords();
        let upper = generators.coordinate_max().into_coords();
        Self {
            generators,
            lower,
            upper,
        }
    }

    /// The generating points.
    pub fn generators(&self) -> &PointMultiset {
        &self.generators
    }

    /// The ambient dimension `d`.
    pub fn dim(&self) -> usize {
        self.generators.dim()
    }

    /// The axis-aligned bounding box of the generators, as
    /// `(per-coordinate minima, per-coordinate maxima)`.
    pub fn bounding_box(&self) -> (&[f64], &[f64]) {
        (&self.lower, &self.upper)
    }

    /// `true` when `point` lies outside the bounding box by more than the
    /// hull tolerance — a certificate that the membership LP would reject it.
    #[inline]
    fn bounding_box_rejects(&self, point: &Point) -> bool {
        point
            .coords()
            .iter()
            .zip(self.lower.iter().zip(&self.upper))
            .any(|(&c, (&lo, &hi))| c < lo - HULL_TOLERANCE || c > hi + HULL_TOLERANCE)
    }

    /// `true` when `point` coincides with one of the generators (within
    /// [`GENERATOR_EQ_TOLERANCE`]) — a certificate of membership.
    #[inline]
    fn equals_a_generator(&self, point: &Point) -> bool {
        self.generators
            .iter()
            .any(|g| g.approx_eq(point, GENERATOR_EQ_TOLERANCE))
    }

    /// Returns `true` if `point` lies in this hull (within LP tolerance).
    ///
    /// Fast paths: a bounding-box reject and a generator-equality accept skip
    /// the solver entirely; otherwise the membership LP runs in
    /// feasibility-only mode (phase 1 of the two-phase simplex, no witness).
    ///
    /// # Panics
    ///
    /// Panics if `point.dim()` differs from the hull's dimension.
    pub fn contains(&self, point: &Point) -> bool {
        assert_eq!(
            point.dim(),
            self.dim(),
            "query point dimension must match the hull dimension"
        );
        if self.bounding_box_rejects(point) {
            return false;
        }
        if self.equals_a_generator(point) {
            return true;
        }
        self.membership_lp(point).solve_feasibility() == SolveStatus::Optimal
    }

    /// [`ConvexHull::contains`] for the heavy-scan worker pool: identical
    /// short-circuits and verdict, but the membership LP leases its buffers
    /// from the supplied workspace and warm-starts phase 1 from the previous
    /// membership solve of the same tableau shape (sound because warm starts
    /// change the pivot walk, never the feasibility verdict).
    pub(crate) fn contains_pooled(
        &self,
        point: &Point,
        workspace: &mut bvc_lp::SimplexWorkspace,
    ) -> bool {
        debug_assert_eq!(point.dim(), self.dim());
        if self.bounding_box_rejects(point) {
            return false;
        }
        if self.equals_a_generator(point) {
            return true;
        }
        self.membership_lp(point)
            .solve_feasibility_warm_with(workspace)
            == SolveStatus::Optimal
    }

    /// The feasibility program `Σ α = 1`, `Σ α_i g_i = point`, `α ≥ 0`.
    fn membership_lp(&self, point: &Point) -> LinearProgram {
        let k = self.generators.len();
        let d = self.dim();
        let mut lp = LinearProgram::new(k, Objective::Minimize);
        lp.add_constraint(vec![1.0; k], Relation::Equal, 1.0);
        for l in 0..d {
            let coeffs: Vec<f64> = self.generators.iter().map(|g| g.coord(l)).collect();
            lp.add_constraint(coeffs, Relation::Equal, point.coord(l));
        }
        lp
    }

    /// Returns convex-combination weights `α` over the generators such that
    /// `Σ α_i g_i = point`, or `None` if `point` is outside the hull.
    ///
    /// # Panics
    ///
    /// Panics if `point.dim()` differs from the hull's dimension.
    pub fn convex_combination(&self, point: &Point) -> Option<Vec<f64>> {
        assert_eq!(
            point.dim(),
            self.dim(),
            "query point dimension must match the hull dimension"
        );
        let solution = self.membership_lp(point).solve();
        if solution.status != SolveStatus::Optimal {
            return None;
        }
        let clamped: Vec<f64> = solution.values.iter().map(|&w| w.max(0.0)).collect();
        let weights = normalise(&clamped);
        // Double-check the witness numerically before handing it out.
        let reconstructed = Point::convex_combination(self.generators.points(), &weights);
        if reconstructed.approx_eq(point, HULL_TOLERANCE) {
            Some(weights)
        } else {
            None
        }
    }

    /// Builds the joint common-point LP of Section 2.2 over the given hulls:
    /// a free point variable `z ∈ R^d` plus one block of convex-combination
    /// variables per hull.
    fn joint_lp(hulls: &[&ConvexHull]) -> LinearProgram {
        let d = hulls[0].dim();
        let total_alpha: usize = hulls.iter().map(|h| h.generators.len()).sum();
        let num_vars = d + total_alpha;
        let mut lp = LinearProgram::new(num_vars, Objective::Minimize);
        for zi in 0..d {
            lp.mark_free(zi);
        }
        let mut offset = d;
        for hull in hulls {
            let k = hull.generators.len();
            // Σ α = 1 for this hull.
            let mut row = vec![0.0; num_vars];
            for a in 0..k {
                row[offset + a] = 1.0;
            }
            lp.add_constraint(row, Relation::Equal, 1.0);
            // z - Σ α_i g_i = 0 per coordinate.
            for l in 0..d {
                let mut row = vec![0.0; num_vars];
                row[l] = 1.0;
                for (a, g) in hull.generators.iter().enumerate() {
                    row[offset + a] = -g.coord(l);
                }
                lp.add_constraint(row, Relation::Equal, 0.0);
            }
            offset += k;
        }
        lp
    }

    /// Solves the joint LP over `hulls` and returns the solver status plus
    /// the candidate point (unverified).
    pub(crate) fn joint_candidate(hulls: &[&ConvexHull]) -> (SolveStatus, Option<Point>) {
        let d = hulls[0].dim();
        let solution = Self::joint_lp(hulls).solve();
        if solution.status != SolveStatus::Optimal {
            return (solution.status, None);
        }
        (
            SolveStatus::Optimal,
            Some(Point::new(solution.values[..d].to_vec())),
        )
    }

    /// Returns a point common to all the given hulls, if one exists.
    ///
    /// This solves a single LP with a free point variable `z ∈ R^d` and one
    /// block of convex-combination variables per hull, mirroring the linear
    /// program of Section 2.2 of the paper (there the hulls are the
    /// `H(T)` for all `(n−f)`-subsets `T`).  For large hull families prefer
    /// [`ConvexHull::common_point_lazy`], which reaches the same answer
    /// through much smaller programs.
    ///
    /// `None` means *no point was certified*: either the joint LP proved the
    /// intersection empty, or (rarely, on numerically degenerate input) the
    /// solver stalled or its candidate failed per-hull re-verification.
    /// This best-effort contract matches the protocols' use of Γ, which skip
    /// subsets whose safe area yields no point.
    ///
    /// # Panics
    ///
    /// Panics if `hulls` is empty or the hulls disagree on dimension.
    pub fn common_point(hulls: &[ConvexHull]) -> Option<Point> {
        assert!(!hulls.is_empty(), "need at least one hull");
        let d = hulls[0].dim();
        assert!(
            hulls.iter().all(|h| h.dim() == d),
            "all hulls must share a dimension"
        );
        let refs: Vec<&ConvexHull> = hulls.iter().collect();
        let (status, z) = Self::joint_candidate(&refs);
        if status != SolveStatus::Optimal {
            return None;
        }
        let z = z.expect("optimal joint LP yields a candidate");
        // Verify the candidate against every hull with an independent
        // membership query; the combined LP can in rare cases report a point
        // whose per-hull witnesses are slightly off numerically.
        if hulls.iter().all(|h| h.contains(&z)) {
            Some(z)
        } else {
            None
        }
    }

    /// Active-set variant of [`ConvexHull::common_point`]: starts from the
    /// first hull alone, solves the (small) joint LP over the working set,
    /// and verifies the candidate against the remaining hulls with membership
    /// queries, adding the first violated hull to the working set and
    /// re-solving.  On numerical disagreement between the joint LP and the
    /// membership tests it falls back to the full joint LP, so the result is
    /// exactly as trustworthy as [`ConvexHull::common_point`]'s.
    ///
    /// # Panics
    ///
    /// Panics if `hulls` is empty or the hulls disagree on dimension.
    pub fn common_point_lazy(hulls: &[ConvexHull]) -> Option<Point> {
        assert!(!hulls.is_empty(), "need at least one hull");
        assert!(
            hulls.iter().all(|h| h.dim() == hulls[0].dim()),
            "all hulls must share a dimension"
        );
        if hulls.len() <= 2 {
            return Self::common_point(hulls);
        }
        Self::active_set_common_point(
            hulls.len(),
            |i| hulls[i].clone(),
            || Self::common_point(hulls),
        )
    }

    /// The active-set working-set loop shared by
    /// [`common_point_lazy`](ConvexHull::common_point_lazy) (slice-backed)
    /// and the safe-area engine (combination-stream-backed):
    /// `hull_at(ordinal)` materialises the hull with the given ordinal
    /// (called at most once per ordinal — results are memoised here), and
    /// `fallback` is the naive all-hulls solve used on numerical
    /// disagreement.
    ///
    /// Invariant: the working set's joint LP *under*-constrains the full
    /// intersection (it covers a subset of the hulls), so its infeasibility
    /// certifies the intersection empty.  A candidate that passes every hull
    /// is a point of the intersection; otherwise the first refuting hull
    /// joins the working set and the loop re-solves.  The working set only
    /// grows, so the loop terminates after at most `count` iterations — in
    /// practice a handful, because an intersection in `R^d` is generically
    /// pinned by few hulls.
    pub(crate) fn active_set_common_point(
        count: usize,
        mut hull_at: impl FnMut(usize) -> ConvexHull,
        fallback: impl Fn() -> Option<Point>,
    ) -> Option<Point> {
        debug_assert!(count > 0, "need at least one hull");
        let mut built: HashMap<usize, ConvexHull> = HashMap::new();
        built.insert(0, hull_at(0));
        let mut active: Vec<usize> = vec![0];
        loop {
            let working: Vec<&ConvexHull> = active.iter().map(|o| &built[o]).collect();
            let (status, candidate) = Self::joint_candidate(&working);
            let z = match (status, candidate) {
                (SolveStatus::Infeasible, _) => return None,
                (SolveStatus::Optimal, Some(z)) => z,
                // Unbounded cannot arise (the candidate is pinned inside the
                // first hull) and a stalled solve certifies nothing; treat
                // both as numerical trouble.
                _ => return fallback(),
            };
            // Verify the candidate against the hulls in ordinal order,
            // materialising each at most once.
            let mut violated: Option<usize> = None;
            for ordinal in 0..count {
                if active.contains(&ordinal) {
                    continue;
                }
                let hull = built.entry(ordinal).or_insert_with(|| hull_at(ordinal));
                if !hull.contains(&z) {
                    violated = Some(ordinal);
                    break;
                }
            }
            match violated {
                Some(ordinal) => active.push(ordinal),
                None => {
                    // The candidate passed every hull outside the working
                    // set; re-verify the working set itself to guard against
                    // joint-LP round-off before accepting.
                    if active.iter().all(|o| built[o].contains(&z)) {
                        return Some(z);
                    }
                    return fallback();
                }
            }
        }
    }
}

fn normalise(weights: &[f64]) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return weights.to_vec();
    }
    weights.iter().map(|w| w / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> ConvexHull {
        ConvexHull::new(PointMultiset::new(vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![2.0, 0.0]),
            Point::new(vec![0.0, 2.0]),
        ]))
    }

    #[test]
    fn vertices_and_interior_are_inside() {
        let hull = triangle();
        assert!(hull.contains(&Point::new(vec![0.0, 0.0])));
        assert!(hull.contains(&Point::new(vec![2.0, 0.0])));
        assert!(hull.contains(&Point::new(vec![0.5, 0.5])));
        assert!(hull.contains(&Point::new(vec![1.0, 1.0]))); // on the hypotenuse
    }

    #[test]
    fn outside_points_are_rejected() {
        let hull = triangle();
        assert!(!hull.contains(&Point::new(vec![1.5, 1.5])));
        assert!(!hull.contains(&Point::new(vec![-0.1, 0.0])));
        assert!(!hull.contains(&Point::new(vec![3.0, 0.0])));
    }

    #[test]
    fn bounding_box_matches_generators() {
        let hull = triangle();
        let (lo, hi) = hull.bounding_box();
        assert_eq!(lo, &[0.0, 0.0]);
        assert_eq!(hi, &[2.0, 2.0]);
    }

    #[test]
    fn bounding_box_reject_agrees_with_lp_reject() {
        // A point inside the bounding box but outside the hull must still be
        // rejected (by the LP), and a point far outside the box must be
        // rejected by the short-circuit.
        let hull = triangle();
        assert!(!hull.contains(&Point::new(vec![1.9, 1.9]))); // in box, out of hull
        assert!(!hull.contains(&Point::new(vec![50.0, 50.0]))); // box reject
    }

    #[test]
    fn convex_combination_witness_reconstructs_the_point() {
        let hull = triangle();
        let p = Point::new(vec![0.4, 0.6]);
        let weights = hull.convex_combination(&p).expect("p is inside");
        assert!((weights.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(weights.iter().all(|&w| w >= 0.0));
        let rebuilt = Point::convex_combination(hull.generators().points(), &weights);
        assert!(rebuilt.approx_eq(&p, 1e-6));
    }

    #[test]
    fn degenerate_hull_of_single_point() {
        let hull = ConvexHull::new(PointMultiset::new(vec![Point::new(vec![1.0, 2.0, 3.0])]));
        assert!(hull.contains(&Point::new(vec![1.0, 2.0, 3.0])));
        assert!(!hull.contains(&Point::new(vec![1.0, 2.0, 3.1])));
    }

    #[test]
    fn segment_hull_in_three_dimensions() {
        let hull = ConvexHull::new(PointMultiset::new(vec![
            Point::new(vec![0.0, 0.0, 0.0]),
            Point::new(vec![2.0, 2.0, 2.0]),
        ]));
        assert!(hull.contains(&Point::new(vec![1.0, 1.0, 1.0])));
        assert!(!hull.contains(&Point::new(vec![1.0, 1.0, 1.2])));
    }

    #[test]
    fn duplicate_generators_do_not_confuse_membership() {
        let hull = ConvexHull::new(PointMultiset::new(vec![
            Point::new(vec![0.0]),
            Point::new(vec![0.0]),
            Point::new(vec![1.0]),
        ]));
        assert!(hull.contains(&Point::new(vec![0.5])));
        assert!(!hull.contains(&Point::new(vec![1.5])));
    }

    #[test]
    #[should_panic(expected = "dimension must match")]
    fn dimension_mismatch_panics() {
        let hull = triangle();
        let _ = hull.contains(&Point::new(vec![0.0]));
    }

    #[test]
    fn common_point_of_overlapping_segments() {
        let h1 = ConvexHull::new(PointMultiset::new(vec![
            Point::new(vec![0.0]),
            Point::new(vec![2.0]),
        ]));
        let h2 = ConvexHull::new(PointMultiset::new(vec![
            Point::new(vec![1.0]),
            Point::new(vec![3.0]),
        ]));
        let p = ConvexHull::common_point(&[h1.clone(), h2.clone()]).expect("they overlap");
        assert!(h1.contains(&p) && h2.contains(&p));
        assert!(p.coord(0) >= 1.0 - 1e-6 && p.coord(0) <= 2.0 + 1e-6);
    }

    #[test]
    fn common_point_absent_for_disjoint_hulls() {
        let h1 = ConvexHull::new(PointMultiset::new(vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
        ]));
        let h2 = ConvexHull::new(PointMultiset::new(vec![
            Point::new(vec![3.0, 3.0]),
            Point::new(vec![4.0, 3.0]),
        ]));
        assert!(ConvexHull::common_point(&[h1, h2]).is_none());
    }

    #[test]
    fn common_point_of_three_triangles_sharing_centre() {
        // Three triangles around the origin that all contain the origin.
        let mk = |pts: Vec<Vec<f64>>| {
            ConvexHull::new(PointMultiset::new(
                pts.into_iter().map(Point::new).collect(),
            ))
        };
        let h1 = mk(vec![vec![-1.0, -1.0], vec![2.0, 0.0], vec![0.0, 2.0]]);
        let h2 = mk(vec![vec![1.0, 1.0], vec![-2.0, 0.0], vec![0.0, -2.0]]);
        let h3 = mk(vec![vec![0.0, 1.5], vec![1.5, -1.0], vec![-1.5, -1.0]]);
        let p = ConvexHull::common_point(&[h1.clone(), h2.clone(), h3.clone()])
            .expect("all contain a neighbourhood of the origin");
        assert!(h1.contains(&p) && h2.contains(&p) && h3.contains(&p));
    }

    #[test]
    fn common_point_single_hull_returns_member() {
        let hull = triangle();
        let p = ConvexHull::common_point(std::slice::from_ref(&hull)).unwrap();
        assert!(hull.contains(&p));
    }

    #[test]
    fn lazy_common_point_agrees_with_full_joint_lp() {
        let mk = |pts: Vec<Vec<f64>>| {
            ConvexHull::new(PointMultiset::new(
                pts.into_iter().map(Point::new).collect(),
            ))
        };
        let hulls = vec![
            mk(vec![vec![-1.0, -1.0], vec![2.0, 0.0], vec![0.0, 2.0]]),
            mk(vec![vec![1.0, 1.0], vec![-2.0, 0.0], vec![0.0, -2.0]]),
            mk(vec![vec![0.0, 1.5], vec![1.5, -1.0], vec![-1.5, -1.0]]),
        ];
        let lazy = ConvexHull::common_point_lazy(&hulls).expect("non-empty intersection");
        assert!(hulls.iter().all(|h| h.contains(&lazy)));
        assert!(ConvexHull::common_point(&hulls).is_some());
    }

    #[test]
    fn lazy_common_point_detects_empty_intersection() {
        let mk = |a: f64, b: f64| {
            ConvexHull::new(PointMultiset::new(vec![
                Point::new(vec![a]),
                Point::new(vec![b]),
            ]))
        };
        // Three segments with pairwise but no triple overlap... actually in
        // 1-D pairwise overlap implies common overlap (Helly), so use truly
        // disjoint ones.
        let hulls = vec![mk(0.0, 1.0), mk(2.0, 3.0), mk(4.0, 5.0)];
        assert!(ConvexHull::common_point_lazy(&hulls).is_none());
        assert!(ConvexHull::common_point(&hulls).is_none());
    }
}
