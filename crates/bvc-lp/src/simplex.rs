//! Two-phase simplex driver: converts a [`LinearProgram`] to standard form,
//! finds an initial basic feasible solution with artificial variables
//! (phase 1), and then optimises the user objective (phase 2).
//!
//! The driver assembles the tableau directly from the problem description
//! (no intermediate row vectors) into buffers leased from a
//! [`SimplexWorkspace`], and supports a feasibility-only mode that stops
//! after phase 1 without recovering variable values — the mode the geometry
//! layer's membership tests run in.

use crate::problem::{LinearProgram, Objective, Relation};
use crate::tableau::{PivotOutcome, Tableau};
use crate::workspace::SimplexWorkspace;
use crate::EPSILON;

/// Outcome classification of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStatus {
    /// An optimal (finite) solution was found.
    Optimal,
    /// The constraints admit no feasible point.
    Infeasible,
    /// The feasible region is unbounded in the optimisation direction.
    Unbounded,
    /// The solver hit its iteration cap before resolving the program
    /// (numerical stalling on degenerate input): neither feasibility nor
    /// infeasibility is certified.  Callers that rely on `Infeasible` as a
    /// proof of emptiness must treat this outcome separately.
    Stalled,
}

impl SolveStatus {
    /// Stable lower-case wire name used in trace streams.
    pub fn wire_name(self) -> &'static str {
        match self {
            SolveStatus::Optimal => "optimal",
            SolveStatus::Infeasible => "infeasible",
            SolveStatus::Unbounded => "unbounded",
            SolveStatus::Stalled => "stalled",
        }
    }
}

/// How much of the two-phase method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SolveMode {
    /// Phase 1 + phase 2 + witness extraction.
    Full,
    /// Phase 1 only: decide feasibility, skip the user objective and the
    /// recovery of variable values.
    FeasibilityOnly,
}

/// Result of solving a [`LinearProgram`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Solve outcome. `values` and `objective_value` are only meaningful when
    /// this is [`SolveStatus::Optimal`].
    pub status: SolveStatus,
    /// One optimal assignment of the decision variables (original indexing).
    pub values: Vec<f64>,
    /// Objective value attained by `values`, in the direction the program was
    /// stated (i.e. already un-negated for maximisation problems).
    pub objective_value: f64,
}

impl Solution {
    fn infeasible(num_variables: usize) -> Self {
        Self {
            status: SolveStatus::Infeasible,
            values: vec![0.0; num_variables],
            objective_value: f64::NAN,
        }
    }

    fn unbounded(num_variables: usize) -> Self {
        Self {
            status: SolveStatus::Unbounded,
            values: vec![0.0; num_variables],
            objective_value: f64::NAN,
        }
    }

    /// Returns `true` when the solve found an optimal point.
    pub fn is_optimal(&self) -> bool {
        self.status == SolveStatus::Optimal
    }
}

/// Standard-form layout: how original variables and constraint rows map onto
/// tableau columns.  Computed in one counting pass; the tableau is then
/// filled directly from the [`LinearProgram`].
struct Layout {
    /// For each original variable, the column of its non-negative part.
    positive_column: Vec<usize>,
    /// For each original variable, the column of its negative part (only for
    /// free variables).
    negative_column: Vec<Option<usize>>,
    /// Total number of structural columns before artificials.
    num_structural: usize,
    /// Per row: `true` when the row is negated so its RHS becomes
    /// non-negative.
    row_flip: Vec<bool>,
    /// Per row: slack/surplus column and its sign (+1 slack, −1 surplus).
    row_slack: Vec<Option<(usize, f64)>>,
    /// Per row: the slack column usable as the initial basis (only `≤` rows
    /// after flipping).
    row_basis_slack: Vec<Option<usize>>,
    /// Per row: artificial column, for rows with no natural slack basis.
    row_artificial: Vec<Option<usize>>,
    /// Total columns including artificials.
    total_cols: usize,
    /// All artificial columns (contiguous at the end).
    artificial_start: usize,
}

fn layout(lp: &LinearProgram) -> Layout {
    let n = lp.num_variables();
    let mut positive_column = Vec::with_capacity(n);
    let mut negative_column = Vec::with_capacity(n);
    let mut next_col = 0usize;
    for var in 0..n {
        positive_column.push(next_col);
        next_col += 1;
        if lp.is_free(var) {
            negative_column.push(Some(next_col));
            next_col += 1;
        } else {
            negative_column.push(None);
        }
    }

    let m = lp.num_constraints();
    let mut row_flip = Vec::with_capacity(m);
    let mut relations = Vec::with_capacity(m);
    for c in lp.constraints() {
        let flip = c.rhs < 0.0;
        let relation = if flip {
            match c.relation {
                Relation::LessEq => Relation::GreaterEq,
                Relation::GreaterEq => Relation::LessEq,
                Relation::Equal => Relation::Equal,
            }
        } else {
            c.relation
        };
        row_flip.push(flip);
        relations.push(relation);
    }

    let mut row_slack = Vec::with_capacity(m);
    let mut row_basis_slack = Vec::with_capacity(m);
    let mut slack_col = next_col;
    for relation in &relations {
        match relation {
            Relation::LessEq => {
                row_slack.push(Some((slack_col, 1.0)));
                row_basis_slack.push(Some(slack_col));
                slack_col += 1;
            }
            Relation::GreaterEq => {
                row_slack.push(Some((slack_col, -1.0)));
                row_basis_slack.push(None);
                slack_col += 1;
            }
            Relation::Equal => {
                row_slack.push(None);
                row_basis_slack.push(None);
            }
        }
    }
    let num_structural = slack_col;

    let mut row_artificial = Vec::with_capacity(m);
    let mut art_col = num_structural;
    for basis in &row_basis_slack {
        if basis.is_none() {
            row_artificial.push(Some(art_col));
            art_col += 1;
        } else {
            row_artificial.push(None);
        }
    }

    Layout {
        positive_column,
        negative_column,
        num_structural,
        row_flip,
        row_slack,
        row_basis_slack,
        row_artificial,
        total_cols: art_col,
        artificial_start: num_structural,
    }
}

/// Fills the zeroed tableau from the problem and layout, and sets the
/// initial basis (slacks where available, artificials elsewhere).
fn fill_tableau(lp: &LinearProgram, lay: &Layout, tableau: &mut Tableau) {
    for (row, constraint) in lp.constraints().iter().enumerate() {
        let sign = if lay.row_flip[row] { -1.0 } else { 1.0 };
        let target = tableau.row_mut(row);
        for (var, &a) in constraint.coefficients.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let v = sign * a;
            target[lay.positive_column[var]] += v;
            if let Some(neg) = lay.negative_column[var] {
                target[neg] -= v;
            }
        }
        if let Some((col, slack_sign)) = lay.row_slack[row] {
            target[col] = slack_sign;
        }
        if let Some(art) = lay.row_artificial[row] {
            target[art] = 1.0;
        }
        tableau.set_rhs(row, sign * constraint.rhs);
        match lay.row_basis_slack[row] {
            Some(slack) => tableau.set_basic(row, slack),
            None => tableau.set_basic(
                row,
                lay.row_artificial[row].expect("rows without a slack basis carry an artificial"),
            ),
        }
    }
}

/// Solves `lp` with the two-phase simplex method, leasing all buffers from
/// `workspace`.  In [`SolveMode::FeasibilityOnly`] the returned solution's
/// `values` are all-zero placeholders and only `status` is meaningful.
pub(crate) fn solve_two_phase(
    lp: &LinearProgram,
    workspace: &mut SimplexWorkspace,
    mode: SolveMode,
) -> Solution {
    solve_two_phase_inner(lp, workspace, mode, false)
}

/// [`solve_two_phase`] in feasibility-only mode with **warm-started**
/// phase 1: the entering-column scan is reordered to front the columns that
/// formed the final basis of the previous completed warm solve of the same
/// tableau shape (stored in the workspace, cleared on trace-scope changes).
/// The reordering is still Bland's rule under a fixed total order, so the
/// verdict is identical to a cold solve — only the pivot walk is shorter on
/// the near-identical successive programs of a contracting round sequence.
/// Restricted to feasibility-only solves on purpose: a full solve's *chosen
/// point* could depend on the pivot walk, and every consumer of this crate
/// relies on point-valued answers being history-free.
pub(crate) fn solve_two_phase_warm(
    lp: &LinearProgram,
    workspace: &mut SimplexWorkspace,
) -> Solution {
    solve_two_phase_inner(lp, workspace, SolveMode::FeasibilityOnly, true)
}

fn solve_two_phase_inner(
    lp: &LinearProgram,
    workspace: &mut SimplexWorkspace,
    mode: SolveMode,
    warm: bool,
) -> Solution {
    let lay = layout(lp);
    let m = lp.num_constraints();
    // Pin the workspace to the current trace scope *before* leasing
    // buffers: crossing scopes drops the pools, so a physical reuse is
    // always a same-scope one and traces stay byte-identical across
    // worker counts.
    workspace.stamp_scope(bvc_trace::scope_token());
    let reuses_before = workspace.reuses();
    let mut tableau = Tableau::from_workspace(m, lay.total_cols, workspace);
    let reused = workspace.reuses() > reuses_before;
    fill_tableau(lp, &lay, &mut tableau);
    let solution = run_phases(lp, &lay, &mut tableau, workspace, mode, warm);
    let pivots = tableau.pivots();
    tableau.recycle(workspace);
    bvc_trace::emit(|| bvc_trace::TraceEvent::Simplex {
        rows: m,
        cols: lay.total_cols,
        pivots,
        class: crate::workspace::class_of((m + 1) * (lay.total_cols + 1)),
        reused,
        status: solution.status.wire_name().to_string(),
    });
    solution
}

fn run_phases(
    lp: &LinearProgram,
    lay: &Layout,
    tableau: &mut Tableau,
    workspace: &mut SimplexWorkspace,
    mode: SolveMode,
    warm: bool,
) -> Solution {
    let m = lp.num_constraints();
    let n_structural = lay.num_structural;
    let total_cols = lay.total_cols;
    let has_artificials = total_cols > lay.artificial_start;

    if has_artificials {
        // Phase-1 objective: minimise the sum of artificial variables.
        for col in lay.artificial_start..total_cols {
            tableau.set_objective_coefficient(col, 1.0);
        }
        tableau.price_out_basis();
        let eligible = workspace.take_bool(total_cols, true);
        // The phase-1 objective is bounded below by zero, so an "unbounded"
        // outcome can only be numerical noise; the decision is made on the
        // attained objective value.
        let warm_priority = if warm {
            workspace
                .warm_priority(m, total_cols)
                .map(<[usize]>::to_vec)
        } else {
            None
        };
        let mut outcome = match &warm_priority {
            Some(priority) => {
                workspace.note_warm_hit();
                tableau.run_simplex_priority(&eligible, priority)
            }
            None => tableau.run_simplex(&eligible),
        };
        if outcome == PivotOutcome::Stalled {
            // The banded ratio test cycled on degenerate input, and by the
            // time the iteration cap fires the tableau has ground thousands
            // of near-tolerance pivots of rounding error into itself —
            // continuing from that basis is hopeless.  Rebuild the tableau
            // from the problem and redo phase 1 under the lexicographic
            // rule, which cannot revisit a basis when started from the
            // identity basis and so terminates in a modest number of pivots
            // before error can accumulate.  Solves that finish inside the
            // primary budget never reach this path, keeping their pivot
            // sequences (and trace streams) bit-identical.
            tableau.clear();
            fill_tableau(lp, lay, tableau);
            for col in lay.artificial_start..total_cols {
                tableau.set_objective_coefficient(col, 1.0);
            }
            tableau.price_out_basis();
            outcome = tableau.run_simplex_lex(&eligible);
        }
        workspace.put_bool(eligible);
        if tableau.objective_value() > 1e-7 {
            // A completed phase 1 that could not zero the artificials is a
            // genuine infeasibility certificate; a *stalled* phase 1 proves
            // nothing and must not masquerade as one (downstream the Γ
            // engine reads `Infeasible` as an emptiness proof).
            if outcome == PivotOutcome::Stalled {
                return Solution {
                    status: SolveStatus::Stalled,
                    values: vec![0.0; lp.num_variables()],
                    objective_value: f64::NAN,
                };
            }
            return Solution::infeasible(lp.num_variables());
        }
        if warm {
            // Phase 1 completed feasibly: its final basis is the warm
            // priority for the next same-shape solve.
            workspace.store_warm_priority(m, total_cols, tableau.basis_columns());
        }
        if mode == SolveMode::FeasibilityOnly {
            return Solution {
                status: SolveStatus::Optimal,
                values: vec![0.0; lp.num_variables()],
                objective_value: 0.0,
            };
        }
        // Drive any artificial variable that is still basic (at value zero)
        // out of the basis if a structural pivot exists; otherwise the row is
        // redundant and the artificial stays basic at zero harmlessly.
        for row in 0..m {
            let basic = tableau.basic_column(row);
            if basic >= lay.artificial_start {
                if let Some(col) = (0..n_structural).find(|&c| tableau.get(row, c).abs() > 1e-7) {
                    tableau.pivot(row, col);
                }
            }
        }
        // Clear the phase-1 objective row.
        let cols = tableau.cols();
        for col in 0..=cols {
            tableau.set(m, col, 0.0);
        }
    } else if mode == SolveMode::FeasibilityOnly {
        // Every row has a natural slack basis: the all-zero structural point
        // is feasible by construction.
        return Solution {
            status: SolveStatus::Optimal,
            values: vec![0.0; lp.num_variables()],
            objective_value: 0.0,
        };
    }

    // Phase 2: load the user objective and optimise, keeping artificial
    // columns out of the basis.
    let sign = match lp.objective() {
        Objective::Minimize => 1.0,
        Objective::Maximize => -1.0,
    };
    for var in 0..lp.num_variables() {
        let c = sign * lp.objective_coefficients()[var];
        if c == 0.0 {
            continue;
        }
        let pos = lay.positive_column[var];
        tableau.set_objective_coefficient(pos, tableau.objective_coefficient(pos) + c);
        if let Some(neg) = lay.negative_column[var] {
            tableau.set_objective_coefficient(neg, tableau.objective_coefficient(neg) - c);
        }
    }
    tableau.price_out_basis();
    let mut eligible = workspace.take_bool(total_cols, false);
    for e in eligible.iter_mut().take(n_structural) {
        *e = true;
    }
    let outcome = tableau.run_simplex(&eligible);
    workspace.put_bool(eligible);
    if outcome == PivotOutcome::Unbounded {
        return Solution::unbounded(lp.num_variables());
    }
    // A phase-2 stall still has a feasible basic solution (phase 1
    // succeeded), which is all the feasibility-style programs served here
    // need; report it as the solution rather than failing the solve.

    // Recover original variable values.
    let mut values = vec![0.0; lp.num_variables()];
    for (var, value) in values.iter_mut().enumerate() {
        let pos = tableau.variable_value(lay.positive_column[var]);
        let neg = lay.negative_column[var]
            .map(|c| tableau.variable_value(c))
            .unwrap_or(0.0);
        *value = pos - neg;
    }
    let raw_objective = tableau.objective_value();
    let objective_value = match lp.objective() {
        Objective::Minimize => raw_objective,
        Objective::Maximize => -raw_objective,
    };
    // Clamp values that are tiny negative due to floating point back to zero
    // for non-free variables.
    for (var, v) in values.iter_mut().enumerate() {
        if !lp.is_free(var) && *v < 0.0 && *v > -EPSILON * 10.0 {
            *v = 0.0;
        }
    }

    Solution {
        status: SolveStatus::Optimal,
        values,
        objective_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearProgram, Objective, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} !~ {b}");
    }

    #[test]
    fn maximization_with_slack_constraints() {
        let mut lp = LinearProgram::new(2, Objective::Maximize);
        lp.set_objective_coefficient(0, 3.0);
        lp.set_objective_coefficient(1, 5.0);
        lp.add_constraint(vec![1.0, 0.0], Relation::LessEq, 4.0);
        lp.add_constraint(vec![0.0, 2.0], Relation::LessEq, 12.0);
        lp.add_constraint(vec![3.0, 2.0], Relation::LessEq, 18.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.objective_value, 36.0);
        assert_close(s.values[0], 2.0);
        assert_close(s.values[1], 6.0);
    }

    #[test]
    fn minimization_with_geq_constraints_needs_phase1() {
        // Classic diet-style LP: minimise 0.12x + 0.15y with coverage
        // constraints.
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        lp.set_objective_coefficient(0, 0.12);
        lp.set_objective_coefficient(1, 0.15);
        lp.add_constraint(vec![60.0, 60.0], Relation::GreaterEq, 300.0);
        lp.add_constraint(vec![12.0, 6.0], Relation::GreaterEq, 36.0);
        lp.add_constraint(vec![10.0, 30.0], Relation::GreaterEq, 90.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.objective_value, 0.66);
        assert_close(s.values[0], 3.0);
        assert_close(s.values[1], 2.0);
    }

    #[test]
    fn equality_constraints_solve() {
        // minimise x + y subject to x + 2y = 4, 3x + 2y = 8
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        lp.set_objective_coefficient(0, 1.0);
        lp.set_objective_coefficient(1, 1.0);
        lp.add_constraint(vec![1.0, 2.0], Relation::Equal, 4.0);
        lp.add_constraint(vec![3.0, 2.0], Relation::Equal, 8.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.values[0], 2.0);
        assert_close(s.values[1], 1.0);
        assert_close(s.objective_value, 3.0);
    }

    #[test]
    fn infeasible_detected() {
        // x ≤ 1 and x ≥ 2 simultaneously.
        let mut lp = LinearProgram::new(1, Objective::Minimize);
        lp.set_objective_coefficient(0, 1.0);
        lp.add_constraint(vec![1.0], Relation::LessEq, 1.0);
        lp.add_constraint(vec![1.0], Relation::GreaterEq, 2.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // maximise x with only a lower bound.
        let mut lp = LinearProgram::new(1, Objective::Maximize);
        lp.set_objective_coefficient(0, 1.0);
        lp.add_constraint(vec![1.0], Relation::GreaterEq, 1.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Unbounded);
    }

    #[test]
    fn free_variable_can_go_negative() {
        // minimise x with x free and x ≥ -5: optimum is -5.
        let mut lp = LinearProgram::new(1, Objective::Minimize);
        lp.mark_free(0);
        lp.set_objective_coefficient(0, 1.0);
        lp.add_constraint(vec![1.0], Relation::GreaterEq, -5.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.values[0], -5.0);
    }

    #[test]
    fn negative_rhs_rows_are_normalised() {
        // -x - y ≤ -2  (i.e. x + y ≥ 2), minimise x + y.
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        lp.set_objective_coefficient(0, 1.0);
        lp.set_objective_coefficient(1, 1.0);
        lp.add_constraint(vec![-1.0, -1.0], Relation::LessEq, -2.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.objective_value, 2.0);
    }

    #[test]
    fn pure_feasibility_problem_convex_combination() {
        // Find alphas with a0 + a1 + a2 = 1, alphas ≥ 0 and
        // 0*a0 + 1*a1 + 2*a2 = 0.5 (a point in the hull of {0,1,2}).
        let mut lp = LinearProgram::new(3, Objective::Minimize);
        lp.add_constraint(vec![1.0, 1.0, 1.0], Relation::Equal, 1.0);
        lp.add_constraint(vec![0.0, 1.0, 2.0], Relation::Equal, 0.5);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        let recombined = s.values[1] + 2.0 * s.values[2];
        assert_close(recombined, 0.5);
        let total: f64 = s.values.iter().sum();
        assert_close(total, 1.0);
        assert!(s.values.iter().all(|&v| v >= -1e-9));
    }

    #[test]
    fn infeasible_convex_combination_detected() {
        // Ask for the point 5 in the hull of {0, 1, 2}: infeasible.
        let mut lp = LinearProgram::new(3, Objective::Minimize);
        lp.add_constraint(vec![1.0, 1.0, 1.0], Relation::Equal, 1.0);
        lp.add_constraint(vec![0.0, 1.0, 2.0], Relation::Equal, 5.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Infeasible);
    }

    #[test]
    fn degenerate_program_terminates() {
        // A degenerate LP where multiple bases describe the same vertex;
        // Bland's rule must still terminate.
        let mut lp = LinearProgram::new(2, Objective::Maximize);
        lp.set_objective_coefficient(0, 1.0);
        lp.set_objective_coefficient(1, 1.0);
        lp.add_constraint(vec![1.0, 1.0], Relation::LessEq, 1.0);
        lp.add_constraint(vec![1.0, 1.0], Relation::LessEq, 1.0);
        lp.add_constraint(vec![1.0, 0.0], Relation::LessEq, 1.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.objective_value, 1.0);
    }

    #[test]
    fn redundant_equalities_are_handled() {
        // Two identical equality rows: one artificial stays basic at zero.
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        lp.set_objective_coefficient(0, 1.0);
        lp.add_constraint(vec![1.0, 1.0], Relation::Equal, 1.0);
        lp.add_constraint(vec![1.0, 1.0], Relation::Equal, 1.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.values[0] + s.values[1], 1.0);
        assert_close(s.objective_value, 0.0);
    }

    #[test]
    fn maximize_with_equality_and_free_variable() {
        // maximise z = x (free) subject to x + y = 3, y ≤ 2 → x can be 3 when
        // y = 0, and as large as... wait y ≥ 0 so x ≤ 3. Optimum x = 3.
        let mut lp = LinearProgram::new(2, Objective::Maximize);
        lp.mark_free(0);
        lp.set_objective_coefficient(0, 1.0);
        lp.add_constraint(vec![1.0, 1.0], Relation::Equal, 3.0);
        lp.add_constraint(vec![0.0, 1.0], Relation::LessEq, 2.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert_close(s.values[0], 3.0);
    }

    #[test]
    fn solution_is_optimal_helper() {
        let mut lp = LinearProgram::new(1, Objective::Minimize);
        lp.set_objective_coefficient(0, 1.0);
        let s = lp.solve();
        assert!(s.is_optimal());
    }

    #[test]
    fn feasibility_mode_agrees_with_full_solve() {
        // Feasible equality system.
        let mut lp = LinearProgram::new(3, Objective::Minimize);
        lp.add_constraint(vec![1.0, 1.0, 1.0], Relation::Equal, 1.0);
        lp.add_constraint(vec![0.0, 1.0, 2.0], Relation::Equal, 0.5);
        assert_eq!(lp.solve_feasibility(), SolveStatus::Optimal);
        // Infeasible variant.
        let mut bad = LinearProgram::new(3, Objective::Minimize);
        bad.add_constraint(vec![1.0, 1.0, 1.0], Relation::Equal, 1.0);
        bad.add_constraint(vec![0.0, 1.0, 2.0], Relation::Equal, 5.0);
        assert_eq!(bad.solve_feasibility(), SolveStatus::Infeasible);
    }

    #[test]
    fn feasibility_mode_without_artificials_is_instant() {
        // Pure ≤ system with non-negative RHS: trivially feasible at x = 0.
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        lp.add_constraint(vec![1.0, 1.0], Relation::LessEq, 4.0);
        assert_eq!(lp.solve_feasibility(), SolveStatus::Optimal);
    }

    #[test]
    fn explicit_workspace_solves_match_thread_local_solves() {
        let mut ws = SimplexWorkspace::new();
        let mut lp = LinearProgram::new(2, Objective::Maximize);
        lp.set_objective_coefficient(0, 3.0);
        lp.set_objective_coefficient(1, 5.0);
        lp.add_constraint(vec![1.0, 0.0], Relation::LessEq, 4.0);
        lp.add_constraint(vec![0.0, 2.0], Relation::LessEq, 12.0);
        lp.add_constraint(vec![3.0, 2.0], Relation::LessEq, 18.0);
        let a = lp.solve();
        let b = lp.solve_with(&mut ws);
        let c = lp.solve_with(&mut ws);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert!(ws.reuses() > 0);
    }
}
