//! Integration tests: the AAD-style exchange (Component #1) delivers
//! Properties 1–3 when driven by the adversarially scheduled asynchronous
//! executor, with Byzantine participants forging and equivocating — not just
//! under the simple FIFO queue used by the unit tests.

use bvc::adversary::{ByzantineStrategy, PointForge};
use bvc::core::{AadExchange, AadMsg, CompletedExchange};
use bvc::geometry::Point;
use bvc::net::{broadcast_to_all, AsyncNetwork, AsyncProcess, DeliveryPolicy, Outgoing, ProcessId};

/// A process that runs exactly one exchange round and outputs the completed
/// B-set snapshot.
struct OneRound {
    me: usize,
    n: usize,
    exchange: Option<AadExchange>,
    value: Point,
    f: usize,
}

impl OneRound {
    fn new(n: usize, f: usize, me: usize, value: Point) -> Self {
        Self {
            me,
            n,
            exchange: None,
            value,
            f,
        }
    }

    fn fan_out(&self, msgs: Vec<AadMsg>) -> Vec<Outgoing<AadMsg>> {
        msgs.into_iter()
            .flat_map(|m| broadcast_to_all(self.n, Some(ProcessId::new(self.me)), &m))
            .collect()
    }
}

impl AsyncProcess for OneRound {
    type Msg = AadMsg;
    type Output = CompletedExchange;

    fn on_start(&mut self) -> Vec<Outgoing<AadMsg>> {
        let (exchange, msgs) = AadExchange::start(self.n, self.f, self.me, 1, self.value.clone());
        self.exchange = Some(exchange);
        self.fan_out(msgs)
    }

    fn on_message(&mut self, from: ProcessId, msg: AadMsg) -> Vec<Outgoing<AadMsg>> {
        let Some(exchange) = self.exchange.as_mut() else {
            return Vec::new();
        };
        let out = exchange.handle(from.index(), &msg);
        self.fan_out(out)
    }

    fn output(&self) -> Option<CompletedExchange> {
        self.exchange.as_ref().and_then(|e| e.completed().cloned())
    }
}

/// A Byzantine participant that runs the exchange skeleton but forges every
/// point per receiver.
struct ByzantineOneRound {
    inner: OneRound,
    forge: PointForge,
}

impl AsyncProcess for ByzantineOneRound {
    type Msg = AadMsg;
    type Output = CompletedExchange;

    fn on_start(&mut self) -> Vec<Outgoing<AadMsg>> {
        let honest = self.inner.on_start();
        self.corrupt(honest)
    }

    fn on_message(&mut self, from: ProcessId, msg: AadMsg) -> Vec<Outgoing<AadMsg>> {
        let honest = self.inner.on_message(from, msg);
        self.corrupt(honest)
    }

    fn output(&self) -> Option<CompletedExchange> {
        None
    }
}

impl ByzantineOneRound {
    fn corrupt(&mut self, outgoing: Vec<Outgoing<AadMsg>>) -> Vec<Outgoing<AadMsg>> {
        let mut forged = Vec::new();
        for mut out in outgoing {
            if let Some(p) = self.forge.forge(1, out.to.index()) {
                out.msg.forge_points(&p);
                forged.push(out);
            }
        }
        forged
    }
}

fn run_one_round(
    n: usize,
    f: usize,
    strategy: ByzantineStrategy,
    policy: DeliveryPolicy,
    seed: u64,
) -> Vec<CompletedExchange> {
    let honest_count = n - f;
    let mut processes: Vec<Box<dyn AsyncProcess<Msg = AadMsg, Output = CompletedExchange>>> =
        Vec::new();
    for i in 0..honest_count {
        processes.push(Box::new(OneRound::new(
            n,
            f,
            i,
            Point::new(vec![i as f64 / honest_count as f64]),
        )));
    }
    for b in 0..f {
        let me = honest_count + b;
        let mut forge = PointForge::new(strategy, 1, 0.0, 1.0, seed + b as u64);
        forge.set_honest_value(Point::new(vec![0.5]));
        processes.push(Box::new(ByzantineOneRound {
            inner: OneRound::new(n, f, me, Point::new(vec![0.5])),
            forge,
        }));
    }
    let honest: Vec<usize> = (0..honest_count).collect();
    let outcome = AsyncNetwork::new(processes, policy, seed, 500_000).run(&honest);
    assert!(
        outcome.completed,
        "every honest process must finish the exchange"
    );
    honest
        .iter()
        .map(|&i| outcome.outputs[i].clone().expect("completed exchange"))
        .collect()
}

fn check_properties(results: &[CompletedExchange], n: usize, f: usize, honest_count: usize) {
    let quorum = n - f;
    for (i, done) in results.iter().enumerate() {
        // |B_i| ≥ n − f.
        assert!(done.entries.len() >= quorum, "process {i}: |B| too small");
        // Property 2: at most one tuple per origin.
        let mut origins: Vec<usize> = done.entries.iter().map(|(p, _)| *p).collect();
        origins.sort_unstable();
        origins.dedup();
        assert_eq!(
            origins.len(),
            done.entries.len(),
            "process {i}: duplicate origins"
        );
        // Property 3: honest tuples carry true values.
        for (origin, value) in &done.entries {
            if *origin < honest_count {
                let expected = *origin as f64 / honest_count as f64;
                assert!(
                    (value.coord(0) - expected).abs() < 1e-12,
                    "process {i}: tuple for honest origin {origin} is {value}, expected {expected}"
                );
            }
        }
    }
    // Property 1: any two honest processes share at least n − f identical tuples.
    for i in 0..results.len() {
        for j in (i + 1)..results.len() {
            let common = results[i]
                .entries
                .iter()
                .filter(|(p, v)| {
                    results[j]
                        .entries
                        .iter()
                        .any(|(q, w)| q == p && w.approx_eq(v, 1e-12))
                })
                .count();
            assert!(
                common >= quorum,
                "processes {i} and {j} share only {common} tuples (need {quorum})"
            );
        }
    }
}

#[test]
fn properties_hold_under_random_scheduling_and_equivocation() {
    let (n, f) = (4, 1);
    let results = run_one_round(
        n,
        f,
        ByzantineStrategy::Equivocate,
        DeliveryPolicy::RandomFair,
        3,
    );
    check_properties(&results, n, f, n - f);
}

#[test]
fn properties_hold_with_two_byzantine_processes() {
    let (n, f) = (7, 2);
    let results = run_one_round(
        n,
        f,
        ByzantineStrategy::RandomNoise,
        DeliveryPolicy::RandomFair,
        11,
    );
    check_properties(&results, n, f, n - f);
}

#[test]
fn properties_hold_when_byzantine_processes_stay_silent() {
    let (n, f) = (4, 1);
    let results = run_one_round(
        n,
        f,
        ByzantineStrategy::Silent,
        DeliveryPolicy::RoundRobin,
        5,
    );
    check_properties(&results, n, f, n - f);
}

#[test]
fn properties_hold_under_delayed_scheduling() {
    let (n, f) = (5, 1);
    let results = run_one_round(
        n,
        f,
        ByzantineStrategy::AntiConvergence,
        DeliveryPolicy::DelayFrom(vec![ProcessId::new(0)]),
        17,
    );
    check_properties(&results, n, f, n - f);
}

#[test]
fn witness_sets_are_quorum_sized_and_verified() {
    let (n, f) = (5, 1);
    let results = run_one_round(
        n,
        f,
        ByzantineStrategy::Equivocate,
        DeliveryPolicy::RandomFair,
        23,
    );
    for done in &results {
        assert!(!done.witness_sets.is_empty());
        for set in &done.witness_sets {
            assert_eq!(set.len(), n - f);
            // Every advertised tuple must be present in the owner's B set
            // with the identical value (that is what made the reporter a
            // witness).
            for (origin, value) in set {
                assert!(done
                    .entries
                    .iter()
                    .any(|(p, v)| p == origin && v.approx_eq(value, 1e-12)));
            }
        }
    }
}
