//! Deterministic asynchronous execution simulator.
//!
//! In the paper's asynchronous model, processes take steps at arbitrary
//! relative speeds and message delays are unbounded but finite; channels are
//! reliable and FIFO.  The [`AsyncNetwork`] simulator models an execution as a
//! sequence of *delivery steps*: at each step an adversarial (but fair)
//! scheduler picks one non-empty channel, delivers its oldest message, and
//! lets the recipient react by sending further messages.
//!
//! The scheduler is seeded, so a given `(processes, policy, seed)` triple
//! always produces exactly the same execution — which is what makes the
//! asynchronous experiments and property tests reproducible.

use crate::faults::FaultPlan;
use crate::process::{enforce_local_broadcast, ExecutionStats, Outgoing, ProcessId};
use bvc_topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// An event-driven state machine driven by the asynchronous executor.
pub trait AsyncProcess {
    /// Message payload type exchanged by the protocol.
    type Msg: Clone;
    /// Decision/output type of the protocol.
    type Output: Clone;

    /// Called once when the execution starts; returns the initial messages.
    fn on_start(&mut self) -> Vec<Outgoing<Self::Msg>>;

    /// Called when a message is delivered to this process; returns the
    /// messages to send in response.
    fn on_message(&mut self, from: ProcessId, msg: Self::Msg) -> Vec<Outgoing<Self::Msg>>;

    /// The process's decision, once reached.
    fn output(&self) -> Option<Self::Output>;
}

/// Scheduling policy of the asynchronous adversary.
///
/// All policies are *fair*: a message sitting in a channel is eventually
/// delivered, because the scheduler only ever chooses among non-empty
/// channels and every policy gives every non-empty channel a chance once the
/// preferred ones are drained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeliveryPolicy {
    /// Pick a uniformly random non-empty channel at each step.
    RandomFair,
    /// Cycle through channels in a fixed order.
    RoundRobin,
    /// Starve messages **from** the listed processes for as long as any other
    /// channel has pending messages (the "slow process" adversary used in the
    /// necessity proof of Theorem 4, where `p_{d+2}` takes no steps until the
    /// others are done).
    DelayFrom(Vec<ProcessId>),
    /// Starve messages **to** the listed processes for as long as any other
    /// channel has pending messages.
    DelayTo(Vec<ProcessId>),
}

/// Outcome of running an asynchronous execution.
#[derive(Debug, Clone)]
pub struct AsyncOutcome<O> {
    /// Output of each process, by index (`None` if it never decided).
    pub outputs: Vec<Option<O>>,
    /// Whether every process the caller waited for decided before the step
    /// cap was reached.
    pub completed: bool,
    /// Message statistics (`steps` counts delivery steps).
    pub stats: ExecutionStats,
}

impl<O> AsyncOutcome<O> {
    /// Outputs of the processes whose indices appear in `indices`; `None`
    /// entries are skipped.
    pub fn outputs_of(&self, indices: &[usize]) -> Vec<&O> {
        indices
            .iter()
            .filter_map(|&i| self.outputs.get(i).and_then(|o| o.as_ref()))
            .collect()
    }
}

/// The asynchronous executor (complete graph by default).
pub struct AsyncNetwork<M, O> {
    processes: Vec<Box<dyn AsyncProcess<Msg = M, Output = O>>>,
    policy: DeliveryPolicy,
    seed: u64,
    max_steps: usize,
    faults: FaultPlan,
    topology: Topology,
    local_broadcast: bool,
}

impl<M: Clone, O: Clone> AsyncNetwork<M, O> {
    /// Creates an executor with the given scheduling policy, RNG seed and a
    /// safety cap on the number of delivery steps.
    ///
    /// # Panics
    ///
    /// Panics if `processes` is empty or `max_steps == 0`.
    pub fn new(
        processes: Vec<Box<dyn AsyncProcess<Msg = M, Output = O>>>,
        policy: DeliveryPolicy,
        seed: u64,
        max_steps: usize,
    ) -> Self {
        assert!(!processes.is_empty(), "need at least one process");
        assert!(max_steps > 0, "max_steps must be positive");
        let topology = Topology::complete(processes.len());
        Self {
            processes,
            policy,
            seed,
            max_steps,
            faults: FaultPlan::new(),
            topology,
            local_broadcast: false,
        }
    }

    /// Switches the executor to the **local-broadcast** delivery model: every
    /// outgoing batch (at start and per delivery reaction) is canonicalised
    /// with [`enforce_local_broadcast`] before per-link faults apply, so a
    /// (Byzantine) sender cannot tell different receivers different things in
    /// the same step.  Off by default (point-to-point channels).
    pub fn with_local_broadcast(mut self, on: bool) -> Self {
        self.local_broadcast = on;
        self
    }

    /// Restricts delivery to the links of `topology` (the complete graph is
    /// the default).  Messages addressed across a missing link vanish
    /// silently — they still count as sent but are neither delivered nor
    /// attributed as dropped, and they consume no scheduling or fault
    /// randomness.
    ///
    /// # Panics
    ///
    /// Panics if `topology.len()` differs from the number of processes.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        assert_eq!(
            topology.len(),
            self.processes.len(),
            "topology size must match the process count"
        );
        self.topology = topology;
        self
    }

    /// Layers an injected-fault schedule over the delivery policy; fault
    /// windows are measured in scheduler ticks.  Drop decisions draw from a
    /// dedicated RNG stream derived from the executor seed, so adding a
    /// fault-free plan leaves the execution byte-identical.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Always `false`; the constructor rejects empty process sets.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Runs the execution until every process listed in `wait_for` has
    /// produced an output, all channels are empty, or the step cap is hit.
    ///
    /// With an injected [`FaultPlan`], scheduler *ticks* advance even on
    /// stalls where every pending message is blocked by an active fault;
    /// `stats.steps` still counts deliveries only.  The tick budget is
    /// `max_steps` plus the plan's quiescence horizon, so a finite fault
    /// schedule can never turn the step cap into permanent starvation.
    pub fn run(mut self, wait_for: &[usize]) -> AsyncOutcome<O> {
        let n = self.processes.len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Dedicated stream for drop decisions, so a plan without drop faults
        // leaves the scheduling stream untouched.
        let mut fault_rng = StdRng::seed_from_u64(self.seed ^ 0xFA01_7FA0_17FA_017F);
        let mut stats = ExecutionStats::for_processes(n);
        // channels[from][to] is a FIFO queue of (due_tick, message).
        let mut channels: Vec<Vec<VecDeque<(usize, M)>>> =
            vec![(0..n).map(|_| VecDeque::new()).collect(); n];
        let mut round_robin_cursor = 0usize;
        let mut now = 0usize;
        let tick_cap = self.max_steps.saturating_add(self.faults.quiescent_at());

        // Start every process and enqueue its initial messages.
        for index in 0..n {
            let outgoing = self.processes[index].on_start();
            enqueue(
                &mut channels,
                &mut stats,
                &mut fault_rng,
                &self.faults,
                &self.topology,
                self.local_broadcast,
                now,
                index,
                outgoing,
                n,
            );
        }

        let decided = |processes: &[Box<dyn AsyncProcess<Msg = M, Output = O>>]| {
            wait_for.iter().all(|&i| processes[i].output().is_some())
        };

        while stats.steps < self.max_steps && now < tick_cap {
            for event in self.faults.events() {
                if event.start == now {
                    bvc_trace::emit(|| bvc_trace::TraceEvent::FaultWindow {
                        round: now,
                        kind: event.kind.name().to_string(),
                        detail: format!("ticks {}..{}", event.start, event.end()),
                    });
                }
            }
            if decided(&self.processes) {
                return AsyncOutcome {
                    outputs: self.processes.iter().map(|p| p.output()).collect(),
                    completed: true,
                    stats,
                };
            }
            // A channel is eligible when its FIFO head has come due and no
            // active partition blocks the link; a blocked head blocks the
            // whole channel, preserving per-link FIFO order.
            let eligible: Vec<(usize, usize)> = (0..n)
                .flat_map(|from| (0..n).map(move |to| (from, to)))
                .filter(|&(from, to)| {
                    channels[from][to]
                        .front()
                        .is_some_and(|&(due, _)| due <= now && !self.faults.blocked(now, from, to))
                })
                .collect();
            if eligible.is_empty() {
                let any_pending = channels.iter().flatten().any(|queue| !queue.is_empty());
                if any_pending {
                    // Everything in flight is fault-blocked: let time pass.
                    now += 1;
                    continue;
                }
                break;
            }
            let (from, to) = self.pick_channel(&eligible, &mut rng, &mut round_robin_cursor);
            let (_, msg) = channels[from][to]
                .pop_front()
                .expect("channel selected among eligible channels");
            stats.record_delivered(to);
            stats.steps += 1;
            bvc_trace::emit(|| bvc_trace::TraceEvent::Deliver {
                time: now,
                from,
                to,
            });
            now += 1;
            let outgoing = self.processes[to].on_message(ProcessId::new(from), msg);
            enqueue(
                &mut channels,
                &mut stats,
                &mut fault_rng,
                &self.faults,
                &self.topology,
                self.local_broadcast,
                now,
                to,
                outgoing,
                n,
            );
        }

        let completed = decided(&self.processes);
        AsyncOutcome {
            outputs: self.processes.iter().map(|p| p.output()).collect(),
            completed,
            stats,
        }
    }

    fn pick_channel(
        &self,
        nonempty: &[(usize, usize)],
        rng: &mut StdRng,
        cursor: &mut usize,
    ) -> (usize, usize) {
        match &self.policy {
            DeliveryPolicy::RandomFair => nonempty[rng.gen_range(0..nonempty.len())],
            DeliveryPolicy::RoundRobin => {
                let choice = nonempty[*cursor % nonempty.len()];
                *cursor = cursor.wrapping_add(1);
                choice
            }
            DeliveryPolicy::DelayFrom(slow) => {
                let preferred: Vec<(usize, usize)> = nonempty
                    .iter()
                    .copied()
                    .filter(|&(from, _)| !slow.iter().any(|p| p.index() == from))
                    .collect();
                let pool = if preferred.is_empty() {
                    nonempty
                } else {
                    &preferred
                };
                pool[rng.gen_range(0..pool.len())]
            }
            DeliveryPolicy::DelayTo(slow) => {
                let preferred: Vec<(usize, usize)> = nonempty
                    .iter()
                    .copied()
                    .filter(|&(_, to)| !slow.iter().any(|p| p.index() == to))
                    .collect();
                let pool = if preferred.is_empty() {
                    nonempty
                } else {
                    &preferred
                };
                pool[rng.gen_range(0..pool.len())]
            }
        }
    }
}

/// Applies the topology and fault plan to `outgoing` at tick `now`: messages
/// across missing links vanish, drop faults destroy messages (attributed to
/// the sender), latency faults stamp a later due tick.  Aggregate
/// `messages_sent` counts every message the process emitted, dropped or not,
/// so fault-free statistics match the unfaulted executor.  With
/// `local_broadcast` the batch is canonicalised first, so per-link faults
/// apply to the already-consistent payloads.
#[allow(clippy::too_many_arguments)]
fn enqueue<M: Clone>(
    channels: &mut [Vec<VecDeque<(usize, M)>>],
    stats: &mut ExecutionStats,
    fault_rng: &mut StdRng,
    faults: &FaultPlan,
    topology: &Topology,
    local_broadcast: bool,
    now: usize,
    from: usize,
    mut outgoing: Vec<Outgoing<M>>,
    n: usize,
) {
    if local_broadcast {
        if let Some((receivers, slots)) = enforce_local_broadcast(&mut outgoing) {
            bvc_trace::emit(|| bvc_trace::TraceEvent::LocalBroadcast {
                time: now,
                from,
                receivers,
                slots,
            });
        }
    }
    stats.record_sent(from, outgoing.len());
    for Outgoing { to, msg } in outgoing {
        bvc_trace::emit(|| bvc_trace::TraceEvent::Send {
            time: now,
            from,
            to: to.index(),
        });
        if to.index() >= n || !topology.has_edge(from, to.index()) {
            bvc_trace::emit(|| bvc_trace::TraceEvent::Vanish {
                time: now,
                from,
                to: to.index(),
            });
            continue;
        }
        let drop_probability = faults.drop_probability(now, from, to.index());
        if drop_probability > 0.0 && fault_rng.gen_bool(drop_probability) {
            stats.record_dropped(from);
            bvc_trace::emit(|| bvc_trace::TraceEvent::Drop {
                time: now,
                from,
                to: to.index(),
            });
            continue;
        }
        let due = now.saturating_add(faults.extra_latency(now, from, to.index()));
        channels[from][to.index()].push_back((due, msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::broadcast_to_all;

    /// Toy protocol: each process broadcasts its value once, then outputs the
    /// sum of the first `n - 1` values it receives (including duplicates).
    struct Summer {
        id: ProcessId,
        n: usize,
        value: u64,
        received: Vec<u64>,
        result: Option<u64>,
    }

    impl AsyncProcess for Summer {
        type Msg = u64;
        type Output = u64;

        fn on_start(&mut self) -> Vec<Outgoing<u64>> {
            broadcast_to_all(self.n, Some(self.id), &self.value)
        }

        fn on_message(&mut self, _from: ProcessId, msg: u64) -> Vec<Outgoing<u64>> {
            if self.result.is_none() {
                self.received.push(msg);
                if self.received.len() == self.n - 1 {
                    self.result = Some(self.received.iter().sum::<u64>() + self.value);
                }
            }
            Vec::new()
        }

        fn output(&self) -> Option<u64> {
            self.result
        }
    }

    fn summer_network(values: &[u64], policy: DeliveryPolicy, seed: u64) -> AsyncNetwork<u64, u64> {
        let n = values.len();
        let processes: Vec<Box<dyn AsyncProcess<Msg = u64, Output = u64>>> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                Box::new(Summer {
                    id: ProcessId::new(i),
                    n,
                    value: v,
                    received: Vec::new(),
                    result: None,
                }) as Box<dyn AsyncProcess<Msg = u64, Output = u64>>
            })
            .collect();
        AsyncNetwork::new(processes, policy, seed, 10_000)
    }

    #[test]
    fn all_messages_eventually_delivered_random_policy() {
        let all: Vec<usize> = (0..4).collect();
        let outcome = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 7).run(&all);
        assert!(outcome.completed);
        assert_eq!(
            outcome.outputs,
            vec![Some(10), Some(10), Some(10), Some(10)]
        );
    }

    #[test]
    fn round_robin_policy_also_completes() {
        let all: Vec<usize> = (0..3).collect();
        let outcome = summer_network(&[1, 2, 3], DeliveryPolicy::RoundRobin, 0).run(&all);
        assert!(outcome.completed);
        assert_eq!(outcome.outputs, vec![Some(6), Some(6), Some(6)]);
    }

    #[test]
    fn executions_are_reproducible_for_equal_seeds() {
        let all: Vec<usize> = (0..4).collect();
        let a = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 42).run(&all);
        let b = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 42).run(&all);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.outputs, b.outputs);
    }

    #[test]
    fn delayed_process_messages_arrive_last_but_arrive() {
        // Delay messages from process 0; everyone still completes because the
        // policy is fair.
        let all: Vec<usize> = (0..3).collect();
        let outcome = summer_network(
            &[100, 1, 2],
            DeliveryPolicy::DelayFrom(vec![ProcessId::new(0)]),
            3,
        )
        .run(&all);
        assert!(outcome.completed);
        assert_eq!(outcome.outputs, vec![Some(103), Some(103), Some(103)]);
    }

    #[test]
    fn waiting_for_a_subset_ignores_others() {
        // Only wait for processes 1 and 2; process 0 needs n-1 = 3 messages
        // like the others, but we do not require it.
        let outcome = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 9).run(&[1, 2]);
        assert!(outcome.completed);
        assert!(outcome.outputs[1].is_some() && outcome.outputs[2].is_some());
    }

    #[test]
    fn step_cap_halts_runaway_executions() {
        // A protocol that ping-pongs forever between two processes.
        struct PingPong {
            id: ProcessId,
        }
        impl AsyncProcess for PingPong {
            type Msg = ();
            type Output = ();
            fn on_start(&mut self) -> Vec<Outgoing<()>> {
                vec![Outgoing::new(ProcessId::new(1 - self.id.index()), ())]
            }
            fn on_message(&mut self, from: ProcessId, _msg: ()) -> Vec<Outgoing<()>> {
                vec![Outgoing::new(from, ())]
            }
            fn output(&self) -> Option<()> {
                None
            }
        }
        let processes: Vec<Box<dyn AsyncProcess<Msg = (), Output = ()>>> = (0..2)
            .map(|i| {
                Box::new(PingPong {
                    id: ProcessId::new(i),
                }) as Box<dyn AsyncProcess<Msg = (), Output = ()>>
            })
            .collect();
        let outcome = AsyncNetwork::new(processes, DeliveryPolicy::RoundRobin, 0, 50).run(&[0, 1]);
        assert!(!outcome.completed);
        assert_eq!(outcome.stats.steps, 50);
    }

    #[test]
    fn outputs_of_selects_indices() {
        let all: Vec<usize> = (0..3).collect();
        let outcome = summer_network(&[1, 2, 3], DeliveryPolicy::RandomFair, 5).run(&all);
        assert_eq!(outcome.outputs_of(&[0, 2]), vec![&6, &6]);
    }

    #[test]
    fn per_channel_fifo_order_is_respected() {
        // Process 0 sends two ordered messages to process 1 at start; process
        // 1 records the order it sees them in.
        struct Sender;
        struct Receiver {
            seen: Vec<u64>,
            done: Option<Vec<u64>>,
        }
        #[derive(Clone)]
        enum Msg {
            Value(u64),
        }
        impl AsyncProcess for Sender {
            type Msg = Msg;
            type Output = Vec<u64>;
            fn on_start(&mut self) -> Vec<Outgoing<Msg>> {
                vec![
                    Outgoing::new(ProcessId::new(1), Msg::Value(1)),
                    Outgoing::new(ProcessId::new(1), Msg::Value(2)),
                    Outgoing::new(ProcessId::new(1), Msg::Value(3)),
                ]
            }
            fn on_message(&mut self, _f: ProcessId, _m: Msg) -> Vec<Outgoing<Msg>> {
                Vec::new()
            }
            fn output(&self) -> Option<Vec<u64>> {
                Some(Vec::new())
            }
        }
        impl AsyncProcess for Receiver {
            type Msg = Msg;
            type Output = Vec<u64>;
            fn on_start(&mut self) -> Vec<Outgoing<Msg>> {
                Vec::new()
            }
            fn on_message(&mut self, _f: ProcessId, m: Msg) -> Vec<Outgoing<Msg>> {
                let Msg::Value(v) = m;
                self.seen.push(v);
                if self.seen.len() == 3 {
                    self.done = Some(self.seen.clone());
                }
                Vec::new()
            }
            fn output(&self) -> Option<Vec<u64>> {
                self.done.clone()
            }
        }
        let processes: Vec<Box<dyn AsyncProcess<Msg = Msg, Output = Vec<u64>>>> = vec![
            Box::new(Sender),
            Box::new(Receiver {
                seen: Vec::new(),
                done: None,
            }),
        ];
        let outcome = AsyncNetwork::new(processes, DeliveryPolicy::RandomFair, 123, 1000).run(&[1]);
        assert_eq!(outcome.outputs[1], Some(vec![1, 2, 3]));
    }

    // ------------------------------------------------------------------
    // Local-broadcast delivery
    // ------------------------------------------------------------------

    /// Process 0 equivocates at start: 1 to process 1, 2 to process 2.
    struct AsyncEquivocator;
    struct AsyncListener {
        heard: Option<u64>,
    }
    impl AsyncProcess for AsyncEquivocator {
        type Msg = u64;
        type Output = u64;
        fn on_start(&mut self) -> Vec<Outgoing<u64>> {
            vec![
                Outgoing::new(ProcessId::new(1), 1),
                Outgoing::new(ProcessId::new(2), 2),
            ]
        }
        fn on_message(&mut self, _f: ProcessId, _m: u64) -> Vec<Outgoing<u64>> {
            Vec::new()
        }
        fn output(&self) -> Option<u64> {
            Some(0)
        }
    }
    impl AsyncProcess for AsyncListener {
        type Msg = u64;
        type Output = u64;
        fn on_start(&mut self) -> Vec<Outgoing<u64>> {
            Vec::new()
        }
        fn on_message(&mut self, from: ProcessId, msg: u64) -> Vec<Outgoing<u64>> {
            if from == ProcessId::new(0) {
                self.heard = Some(msg);
            }
            Vec::new()
        }
        fn output(&self) -> Option<u64> {
            self.heard
        }
    }

    fn async_equivocation_network() -> AsyncNetwork<u64, u64> {
        let processes: Vec<Box<dyn AsyncProcess<Msg = u64, Output = u64>>> = vec![
            Box::new(AsyncEquivocator),
            Box::new(AsyncListener { heard: None }),
            Box::new(AsyncListener { heard: None }),
        ];
        AsyncNetwork::new(processes, DeliveryPolicy::RoundRobin, 0, 100)
    }

    #[test]
    fn async_point_to_point_permits_equivocation() {
        let outcome = async_equivocation_network().run(&[1, 2]);
        assert_eq!(outcome.outputs[1], Some(1));
        assert_eq!(outcome.outputs[2], Some(2));
    }

    #[test]
    fn async_local_broadcast_forces_receiver_consistency() {
        let outcome = async_equivocation_network()
            .with_local_broadcast(true)
            .run(&[1, 2]);
        assert_eq!(outcome.outputs[1], Some(1));
        assert_eq!(outcome.outputs[2], Some(1));
    }

    #[test]
    fn async_local_broadcast_is_identity_for_honest_broadcasters() {
        let all: Vec<usize> = (0..4).collect();
        let plain = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 42).run(&all);
        let lb = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 42)
            .with_local_broadcast(true)
            .run(&all);
        assert_eq!(plain.outputs, lb.outputs);
        assert_eq!(plain.stats, lb.stats);
    }

    // ------------------------------------------------------------------
    // Declared topologies
    // ------------------------------------------------------------------

    use bvc_topology::Topology;

    #[test]
    fn complete_topology_leaves_executions_byte_identical() {
        let all: Vec<usize> = (0..4).collect();
        let plain = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 42).run(&all);
        let explicit = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 42)
            .with_topology(Topology::complete(4))
            .run(&all);
        assert_eq!(plain.outputs, explicit.outputs);
        assert_eq!(plain.stats, explicit.stats);
    }

    #[test]
    fn missing_links_starve_receivers_without_drop_attribution() {
        // Summer processes need n − 1 = 3 messages; on a ring each receives
        // only 2, so nobody decides — and nothing is recorded as dropped.
        let all: Vec<usize> = (0..4).collect();
        let outcome = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 7)
            .with_topology(Topology::ring(4))
            .run(&all);
        assert!(!outcome.completed);
        assert!(outcome.outputs.iter().all(|o| o.is_none()));
        assert_eq!(outcome.stats.messages_sent, 12);
        assert_eq!(outcome.stats.messages_delivered, 8);
        assert_eq!(outcome.stats.messages_dropped, 0);
    }

    // ------------------------------------------------------------------
    // Injected network faults
    // ------------------------------------------------------------------

    use crate::faults::{FaultEvent, FaultKind, FaultPlan, LinkSelector};

    #[test]
    fn empty_fault_plan_leaves_executions_byte_identical() {
        let all: Vec<usize> = (0..4).collect();
        let plain = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 42).run(&all);
        let faulted = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 42)
            .with_faults(FaultPlan::new())
            .run(&all);
        assert_eq!(plain.outputs, faulted.outputs);
        assert_eq!(plain.stats, faulted.stats);
    }

    /// Fairness regression: a partition with a finite window never
    /// permanently starves a channel — messages queued while the partition is
    /// up are delivered after the heal and every process still decides.
    #[test]
    fn finite_partition_heals_and_never_starves_a_channel() {
        let all: Vec<usize> = (0..4).collect();
        let plan = FaultPlan::new()
            .with_event(FaultEvent {
                kind: FaultKind::Partition {
                    groups: vec![vec![ProcessId::new(0)]],
                },
                start: 0,
                duration: 300,
            })
            .unwrap();
        let outcome = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 7)
            .with_faults(plan)
            .run(&all);
        assert!(outcome.completed, "partition must heal, not starve");
        assert_eq!(
            outcome.outputs,
            vec![Some(10), Some(10), Some(10), Some(10)]
        );
        assert_eq!(
            outcome.stats.messages_dropped, 0,
            "partitions delay, never destroy"
        );
    }

    /// Fairness regression: a finite-window drop fault destroys only messages
    /// sent inside the window; the channel itself is never starved afterwards.
    #[test]
    fn finite_drop_window_loses_messages_but_not_the_channel() {
        let all: Vec<usize> = (0..4).collect();
        // Destroy everything process 0 sends at tick 0 (its start broadcast).
        let plan = FaultPlan::new()
            .with_event(FaultEvent {
                kind: FaultKind::Drop {
                    rate: 1.0,
                    links: LinkSelector::From(vec![ProcessId::new(0)]),
                },
                start: 0,
                duration: 1,
            })
            .unwrap();
        let outcome = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 7)
            .with_faults(plan)
            .run(&all);
        // Process 0 still hears the other three and decides; the others are
        // missing its value forever — drops genuinely break reliability.
        assert_eq!(outcome.outputs[0], Some(10));
        assert!(outcome.outputs[1..].iter().all(|o| o.is_none()));
        assert!(!outcome.completed);
        assert_eq!(outcome.stats.messages_dropped, 3);
        assert_eq!(outcome.stats.per_process[0].dropped, 3);
        assert_eq!(outcome.stats.per_process[0].sent, 3);
    }

    #[test]
    fn latency_fault_delays_delivery_but_everyone_decides() {
        let all: Vec<usize> = (0..3).collect();
        let plan = FaultPlan::new()
            .with_event(FaultEvent {
                kind: FaultKind::Latency {
                    extra: 100,
                    links: LinkSelector::All,
                },
                start: 0,
                duration: 1,
            })
            .unwrap();
        let outcome = summer_network(&[1, 2, 3], DeliveryPolicy::RandomFair, 5)
            .with_faults(plan)
            .run(&all);
        assert!(outcome.completed);
        assert_eq!(outcome.outputs, vec![Some(6), Some(6), Some(6)]);
        // Deliveries are unchanged; only time passed while stalled.
        assert_eq!(outcome.stats.messages_delivered, 6);
    }

    #[test]
    fn faulted_executions_are_reproducible_for_equal_seeds() {
        let all: Vec<usize> = (0..4).collect();
        let plan = FaultPlan::new()
            .with_event(FaultEvent {
                kind: FaultKind::Drop {
                    rate: 0.5,
                    links: LinkSelector::All,
                },
                start: 0,
                duration: 2,
            })
            .unwrap();
        let a = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 11)
            .with_faults(plan.clone())
            .run(&all);
        let b = summer_network(&[1, 2, 3, 4], DeliveryPolicy::RandomFair, 11)
            .with_faults(plan)
            .run(&all);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn per_process_counters_track_the_toy_protocol() {
        let all: Vec<usize> = (0..3).collect();
        let outcome = summer_network(&[1, 2, 3], DeliveryPolicy::RoundRobin, 0).run(&all);
        assert!(outcome.completed);
        for counters in &outcome.stats.per_process {
            assert_eq!(counters.sent, 2);
            assert_eq!(counters.delivered, 2);
            assert_eq!(counters.dropped, 0);
        }
    }
}
