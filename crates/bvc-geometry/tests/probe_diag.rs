//! Regression pin for the `gamma_point n=10 f=2 d=3` benchmark row — the
//! reproduction referenced from the README's "Case study: the n = 10,
//! f = 2, d = 3 outlier" section.
//!
//! Historically this was an `#[ignore]`d diagnostic: seed 1016 produced a
//! degenerate phase-1 LP that stalled the banded simplex, corrupted the
//! tableau, and sent the engine to the naive all-hulls fallback (over a
//! second per query in debug builds) which then *mis-reported* the
//! sub-tolerance Lemma-1 sliver as empty.  The lexicographic stall recovery
//! in `bvc-lp` fixed both, so the diagnostic is now a latency-free
//! regression test: every seed must find its Γ point, and none may take the
//! naive fallback.  No timing assertions — only the engine path taken,
//! which is deterministic.

use bvc_geometry::{gamma_point_attributed, PointMultiset, WorkloadGenerator};
use bvc_trace::GammaPath;

#[test]
fn n10_f2_d3_corpus_finds_points_without_the_naive_fallback() {
    for s in 0..24u64 {
        let seed = 1000 + s;
        let y: PointMultiset = WorkloadGenerator::new(seed).box_points(10, 3, 0.0, 1.0);
        let (point, attribution) = gamma_point_attributed(&y, 2);
        assert!(
            point.is_some(),
            "seed {seed}: Lemma 1 holds (|Y| = 10 ≥ (d+1)f + 1 = 9), \
             so Γ must be non-empty"
        );
        assert_ne!(
            attribution.path,
            GammaPath::NaiveFallback,
            "seed {seed}: the stall recovery must keep the active-set loop \
             off the naive all-hulls fallback"
        );
    }
}
