//! E2 — Theorem 3 (sufficiency): Exact BVC at `n = max(3f+1, (d+1)f+1)`.
//!
//! Runs the Exact BVC algorithm at exactly the tight bound for a sweep of
//! `(d, f)` and every active Byzantine strategy, and checks the three
//! correctness conditions.  The paper proves they always hold at the bound;
//! every row of the table must therefore report `yes / yes / yes`.

use bvc_adversary::ByzantineStrategy;
use bvc_bench::{experiment_header, fmt, honest_workload, mark, Table};
use bvc_core::{BvcSession, ProtocolKind, RunConfig, Setting};

fn main() {
    experiment_header(
        "E2: Theorem 3 sufficiency — Exact BVC at the tight bound",
        "n = max(3f+1, (d+1)f+1) suffices for Exact BVC: agreement, validity and termination \
         hold under every Byzantine strategy",
    );

    let mut table = Table::new(&[
        "d",
        "f",
        "n (tight)",
        "adversary",
        "agreement",
        "validity",
        "termination",
        "rounds",
        "msgs",
        "max spread",
    ]);
    let sweep = [(1usize, 1usize), (2, 1), (3, 1), (4, 1), (2, 2)];
    for &(d, f) in &sweep {
        let n = Setting::ExactSync.min_processes(d, f);
        for (s, strategy) in ByzantineStrategy::active_attacks().into_iter().enumerate() {
            let inputs = honest_workload(40 + s as u64 + (d * 7 + f) as u64, n - f, d);
            let run = BvcSession::new(
                ProtocolKind::Exact,
                RunConfig::new(n, f, d)
                    .honest_inputs(inputs)
                    .adversary(strategy)
                    .seed(7 + s as u64),
            )
            .expect("parameters satisfy the bound")
            .run();
            let verdict = run.verdict();
            table.row(&[
                d.to_string(),
                f.to_string(),
                n.to_string(),
                strategy.name().to_string(),
                mark(verdict.agreement),
                mark(verdict.validity),
                mark(verdict.termination),
                run.rounds().to_string(),
                run.stats().messages_delivered.to_string(),
                fmt(verdict.max_pairwise_distance, 9),
            ]);
        }
    }
    table.print();
    println!();
    println!(
        "Every configuration at the tight bound satisfies all three conditions, the constructive \
         half of Theorem 3. Rounds are f + 3 (f + 2 broadcast rounds plus the closing round) and \
         the message count grows with n^2 per round times the EIG relay fan-out."
    );
}
