//! Shared helpers for the benchmark and experiment harness.
//!
//! Every `exp_*` binary in this crate regenerates one artifact of the paper
//! (a theorem's bound, a formula, or Figure 1) and prints a markdown table;
//! `EXPERIMENTS.md` records those tables next to the paper's claims.  The
//! helpers here keep the binaries small: a fixed-width markdown table
//! printer, canonical workload constructors, and the sweep definitions shared
//! between experiments and Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bvc_geometry::{Point, WorkloadGenerator};

/// A simple markdown table accumulator with aligned columns.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the header row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match the header"
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, width) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:<width$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push('|');
        for width in &widths {
            out.push_str(&format!("{:-<w$}|", "", w = width + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints an experiment header in a consistent format.
pub fn experiment_header(id: &str, claim: &str) {
    println!("## {id}");
    println!();
    println!("paper claim: {claim}");
    println!();
}

/// Canonical honest-input workload used across experiments: `count` points of
/// dimension `d` drawn uniformly from `[0, 1]^d` with the given seed.
pub fn honest_workload(seed: u64, count: usize, d: usize) -> Vec<Point> {
    WorkloadGenerator::new(seed)
        .box_points(count, d, 0.0, 1.0)
        .into_points()
}

/// Formats a boolean as a check mark / cross for tables.
pub fn mark(ok: bool) -> String {
    if ok {
        "yes".to_string()
    } else {
        "NO".to_string()
    }
}

/// Formats a float with the given precision.
pub fn fmt(value: f64, precision: usize) -> String {
    format!("{value:.precision$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut table = Table::new(&["n", "verdict"]);
        table.row(&["4".into(), "yes".into()]);
        table.row(&["16".into(), "NO".into()]);
        let rendered = table.render();
        assert!(rendered.contains("| n  | verdict |"));
        assert!(rendered.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let mut table = Table::new(&["a", "b"]);
        table.row(&["1".into()]);
    }

    #[test]
    fn workload_is_reproducible() {
        assert_eq!(honest_workload(1, 3, 2), honest_workload(1, 3, 2));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(mark(true), "yes");
        assert_eq!(mark(false), "NO");
        assert_eq!(fmt(0.12345, 3), "0.123");
    }
}
