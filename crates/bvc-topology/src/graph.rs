//! The [`Topology`] type: a directed adjacency relation over `n` processes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Why a topology could not be constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyError {
    /// A structural parameter is invalid (zero nodes, bad torus dimensions,
    /// infeasible regular degree, out-of-range edge endpoint, …).
    Invalid(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Invalid(msg) => write!(f, "invalid topology: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}

fn invalid<T>(message: impl Into<String>) -> Result<T, TopologyError> {
    Err(TopologyError::Invalid(message.into()))
}

/// A directed communication graph over processes `0..n`.
///
/// The adjacency relation covers the *inter-process* links only; the loopback
/// link `i → i` is implicit and always present ([`has_edge`](Self::has_edge)
/// returns `true` for it), so protocols that deliver to themselves work on
/// every topology.  Neighbor lists never include the process itself.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    n: usize,
    label: String,
    /// Row-major `from * n + to` adjacency (loopback entries stay `false`).
    adjacency: Vec<bool>,
    /// Sorted out-neighbor lists, one per process.
    out: Vec<Vec<usize>>,
    /// Sorted in-neighbor lists, one per process.
    incoming: Vec<Vec<usize>>,
}

impl Topology {
    fn from_adjacency(n: usize, label: String, adjacency: Vec<bool>) -> Self {
        debug_assert_eq!(adjacency.len(), n * n);
        let mut out = vec![Vec::new(); n];
        let mut incoming = vec![Vec::new(); n];
        for from in 0..n {
            for to in 0..n {
                if from != to && adjacency[from * n + to] {
                    out[from].push(to);
                    incoming[to].push(from);
                }
            }
        }
        Self {
            n,
            label,
            adjacency,
            out,
            incoming,
        }
    }

    fn build<F: FnMut(usize, usize) -> bool>(n: usize, label: String, mut edge: F) -> Self {
        let mut adjacency = vec![false; n * n];
        for from in 0..n {
            for to in 0..n {
                if from != to && edge(from, to) {
                    adjacency[from * n + to] = true;
                }
            }
        }
        Self::from_adjacency(n, label, adjacency)
    }

    /// The complete graph on `n` processes — the source paper's setting and
    /// the default substrate of every executor.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn complete(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        Self::build(n, "complete".into(), |_, _| true)
    }

    /// The bidirectional ring: process `i` is linked with `i ± 1 (mod n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn ring(n: usize) -> Self {
        assert!(n > 0, "need at least one process");
        Self::build(n, "ring".into(), |from, to| {
            (from + 1) % n == to || (to + 1) % n == from
        })
    }

    /// The `rows × cols` torus: a grid with wraparound in both dimensions and
    /// bidirectional 4-neighborhoods (process `r * cols + c` sits at `(r, c)`).
    ///
    /// # Errors
    ///
    /// Rejects `rows == 0`, `cols == 0`.
    pub fn torus(rows: usize, cols: usize) -> Result<Self, TopologyError> {
        if rows == 0 || cols == 0 {
            return invalid("torus dimensions must be positive");
        }
        let n = rows * cols;
        let coords = |i: usize| (i / cols, i % cols);
        Ok(Self::build(
            n,
            format!("torus:{rows}x{cols}"),
            |from, to| {
                let (r1, c1) = coords(from);
                let (r2, c2) = coords(to);
                let row_adjacent = c1 == c2 && ((r1 + 1) % rows == r2 || (r2 + 1) % rows == r1);
                let col_adjacent = r1 == r2 && ((c1 + 1) % cols == c2 || (c2 + 1) % cols == c1);
                row_adjacent || col_adjacent
            },
        ))
    }

    /// A seeded random `degree`-regular undirected graph (every process has
    /// exactly `degree` in- and out-neighbors, all links bidirectional).
    ///
    /// The construction is fully deterministic in `(n, degree, seed)`: it
    /// starts from the circulant graph with offsets `1..=degree/2` (plus the
    /// antipodal offset `n/2` when `degree` is odd) and then applies seeded
    /// degree-preserving double-edge swaps, so the same scenario seed always
    /// yields the same graph on every platform.
    ///
    /// # Errors
    ///
    /// Rejects `degree == 0`, `degree >= n`, and odd `degree` with odd `n`
    /// (no such regular graph exists).
    pub fn random_regular(n: usize, degree: usize, seed: u64) -> Result<Self, TopologyError> {
        if n == 0 {
            return invalid("need at least one process");
        }
        if degree == 0 || degree >= n {
            return invalid(format!(
                "regular degree must satisfy 1 <= degree < n, got degree = {degree}, n = {n}"
            ));
        }
        if degree % 2 == 1 && n % 2 == 1 {
            return invalid(format!(
                "no {degree}-regular graph on {n} nodes exists (odd degree needs even n)"
            ));
        }
        // Circulant seed graph.
        let mut adjacency = vec![false; n * n];
        let mut link = |a: usize, b: usize, present: bool| {
            adjacency[a * n + b] = present;
            adjacency[b * n + a] = present;
        };
        for i in 0..n {
            for offset in 1..=(degree / 2) {
                link(i, (i + offset) % n, true);
            }
            if degree % 2 == 1 {
                link(i, (i + n / 2) % n, true);
            }
        }
        // Undirected edge list (a < b) for the swap phase.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if adjacency[a * n + b] {
                    edges.push((a, b));
                }
            }
        }
        // Seeded double-edge swaps: (a,b),(c,d) → (a,d),(c,b) whenever the
        // four endpoints are distinct and the replacement links are absent.
        // Each swap preserves every degree exactly.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7090_1090_7090_1090);
        let attempts = 10 * edges.len().max(1);
        for _ in 0..attempts {
            if edges.len() < 2 {
                break;
            }
            let i = rng.gen_range(0..edges.len());
            let j = rng.gen_range(0..edges.len());
            if i == j {
                continue;
            }
            let (a, b) = edges[i];
            let (c, d) = edges[j];
            if a == c || a == d || b == c || b == d {
                continue;
            }
            if adjacency[a * n + d] || adjacency[c * n + b] {
                continue;
            }
            let mut link = |x: usize, y: usize, present: bool| {
                adjacency[x * n + y] = present;
                adjacency[y * n + x] = present;
            };
            link(a, b, false);
            link(c, d, false);
            link(a, d, true);
            link(c, b, true);
            edges[i] = (a.min(d), a.max(d));
            edges[j] = (c.min(b), c.max(b));
        }
        Ok(Self::from_adjacency(
            n,
            format!("random-regular:{degree}"),
            adjacency,
        ))
    }

    /// A topology from an explicit edge list.  Each `(from, to)` pair adds the
    /// directed link `from → to`; with `undirected = true` the reverse link is
    /// added as well.  Self-loops are ignored (loopback is implicit).
    ///
    /// # Errors
    ///
    /// Rejects `n == 0` and endpoints `>= n`.
    pub fn from_edges(
        n: usize,
        edges: &[(usize, usize)],
        undirected: bool,
    ) -> Result<Self, TopologyError> {
        if n == 0 {
            return invalid("need at least one process");
        }
        let mut adjacency = vec![false; n * n];
        for &(from, to) in edges {
            if from >= n || to >= n {
                return invalid(format!(
                    "edge ({from}, {to}) out of range for n = {n} processes"
                ));
            }
            if from == to {
                continue;
            }
            adjacency[from * n + to] = true;
            if undirected {
                adjacency[to * n + from] = true;
            }
        }
        Ok(Self::from_adjacency(n, "explicit".into(), adjacency))
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`; every constructor rejects `n == 0`.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// A stable display label of the topology family
    /// (`complete`, `ring`, `torus:RxC`, `random-regular:K`, `explicit`).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Whether the directed link `from → to` exists.  The loopback
    /// `from == to` always does.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        assert!(from < self.n && to < self.n, "endpoint out of range");
        from == to || self.adjacency[from * self.n + to]
    }

    /// The processes `to` with a link `i → to`, sorted, excluding `i`.
    pub fn out_neighbors(&self, i: usize) -> &[usize] {
        &self.out[i]
    }

    /// The processes `from` with a link `from → i`, sorted, excluding `i`.
    pub fn in_neighbors(&self, i: usize) -> &[usize] {
        &self.incoming[i]
    }

    /// Out-degree of process `i` (loopback not counted).
    pub fn out_degree(&self, i: usize) -> usize {
        self.out[i].len()
    }

    /// In-degree of process `i` (loopback not counted).
    pub fn in_degree(&self, i: usize) -> usize {
        self.incoming[i].len()
    }

    /// Smallest in-degree over all processes.
    pub fn min_in_degree(&self) -> usize {
        (0..self.n).map(|i| self.in_degree(i)).min().unwrap_or(0)
    }

    /// Smallest out-degree over all processes.
    pub fn min_out_degree(&self) -> usize {
        (0..self.n).map(|i| self.out_degree(i)).min().unwrap_or(0)
    }

    /// Number of directed inter-process links.
    pub fn edge_count(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Whether every inter-process link exists (the paper's setting).
    pub fn is_complete(&self) -> bool {
        self.edge_count() == self.n * self.n.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_has_all_links() {
        let t = Topology::complete(5);
        assert!(t.is_complete());
        assert_eq!(t.edge_count(), 20);
        assert_eq!(t.out_neighbors(2), &[0, 1, 3, 4]);
        assert_eq!(t.in_neighbors(2), &[0, 1, 3, 4]);
        assert_eq!(t.min_in_degree(), 4);
        assert_eq!(t.label(), "complete");
    }

    #[test]
    fn loopback_always_exists() {
        let t = Topology::ring(4);
        for i in 0..4 {
            assert!(t.has_edge(i, i));
            assert!(!t.out_neighbors(i).contains(&i));
        }
    }

    #[test]
    fn ring_links_are_bidirectional_neighbors() {
        let t = Topology::ring(5);
        assert!(!t.is_complete());
        assert_eq!(t.out_neighbors(0), &[1, 4]);
        assert_eq!(t.in_neighbors(3), &[2, 4]);
        assert!(t.has_edge(4, 0) && t.has_edge(0, 4));
        assert!(!t.has_edge(0, 2));
        assert_eq!(t.edge_count(), 10);
    }

    #[test]
    fn ring_of_two_collapses_to_one_mutual_link() {
        let t = Topology::ring(2);
        assert_eq!(t.out_neighbors(0), &[1]);
        assert_eq!(t.edge_count(), 2);
    }

    #[test]
    fn torus_has_wraparound_four_neighborhoods() {
        let t = Topology::torus(3, 3).unwrap();
        assert_eq!(t.len(), 9);
        // Node 0 = (0,0): row wrap → 3 and 6, col wrap → 1 and 2.
        assert_eq!(t.out_neighbors(0), &[1, 2, 3, 6]);
        assert_eq!(t.in_degree(4), 4);
        assert_eq!(t.label(), "torus:3x3");
        assert!(Topology::torus(0, 3).is_err());
    }

    #[test]
    fn two_row_torus_dedupes_coincident_links() {
        // With 2 rows the up and down neighbors coincide; degree is 3.
        let t = Topology::torus(2, 4).unwrap();
        assert_eq!(t.min_in_degree(), 3);
        assert_eq!(t.min_out_degree(), 3);
    }

    #[test]
    fn random_regular_is_regular_and_deterministic() {
        let a = Topology::random_regular(10, 4, 7).unwrap();
        let b = Topology::random_regular(10, 4, 7).unwrap();
        assert_eq!(a, b, "same (n, degree, seed) must yield the same graph");
        for i in 0..10 {
            assert_eq!(a.in_degree(i), 4);
            assert_eq!(a.out_degree(i), 4);
        }
        // Links are undirected.
        for from in 0..10 {
            for &to in a.out_neighbors(from) {
                assert!(a.has_edge(to, from));
            }
        }
        let c = Topology::random_regular(10, 4, 8).unwrap();
        assert_ne!(a, c, "different seeds should (here) yield different graphs");
    }

    #[test]
    fn random_regular_rejects_infeasible_parameters() {
        assert!(Topology::random_regular(5, 0, 0).is_err());
        assert!(Topology::random_regular(5, 5, 0).is_err());
        assert!(Topology::random_regular(5, 3, 0).is_err(), "odd·odd");
        assert!(Topology::random_regular(6, 3, 0).is_ok());
    }

    #[test]
    fn explicit_edges_directed_and_undirected() {
        let directed = Topology::from_edges(3, &[(0, 1), (1, 2), (2, 0)], false).unwrap();
        assert!(directed.has_edge(0, 1) && !directed.has_edge(1, 0));
        assert_eq!(directed.edge_count(), 3);
        let undirected = Topology::from_edges(3, &[(0, 1)], true).unwrap();
        assert!(undirected.has_edge(1, 0));
        assert!(Topology::from_edges(3, &[(0, 3)], false).is_err());
    }

    #[test]
    fn self_loops_in_edge_lists_are_ignored() {
        let t = Topology::from_edges(2, &[(0, 0), (0, 1)], false).unwrap();
        assert_eq!(t.edge_count(), 1);
        assert!(t.has_edge(0, 0), "loopback is implicit regardless");
    }
}
