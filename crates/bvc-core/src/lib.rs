//! Byzantine vector consensus in complete graphs — the algorithms of
//! Vaidya & Garg (PODC 2013).
//!
//! The input of each of `n` processes is a `d`-dimensional vector of reals; up
//! to `f` processes are Byzantine.  The decision of every non-faulty process
//! must lie in the convex hull of the non-faulty inputs (validity) and the
//! decisions must agree (exactly, or within ε per coordinate).  This crate
//! implements the paper's four algorithms with their tight resilience bounds:
//!
//! | algorithm | module | bound |
//! |-----------|--------|-------|
//! | Exact BVC, synchronous | [`exact`] | `n ≥ max(3f+1, (d+1)f+1)` |
//! | Approximate BVC, asynchronous (AAD exchange) | [`approx`] + [`aad`] | `n ≥ (d+2)f+1` |
//! | Restricted-round, synchronous | [`restricted`] | `n ≥ (d+2)f+1` |
//! | Restricted-round, asynchronous | [`restricted`] | `n ≥ (d+4)f+1` |
//!
//! Beyond the paper's complete graph, [`iterative`] runs Vaidya's iterative
//! protocol on arbitrary topologies and [`directed`] runs exact consensus on
//! arbitrary directed graphs under point-to-point (arXiv:1208.5075) or
//! local-broadcast (arXiv:1911.07298) delivery; both are governed by the
//! graph conditions of `bvc-topology` rather than a closed-form bound.
//!
//! The necessity halves of the bounds are materialised as executable
//! constructions in [`lower_bounds`]; the convergence formulas (the
//! contraction factor `γ` and the round budget) live in [`convergence`]; the
//! session API that wires protocols, network executors and adversaries
//! together and scores the outcome is in [`run`]: one [`RunConfig`], one
//! [`BvcSession`] dispatching to a pluggable [`ProtocolDriver`], one
//! [`RunReport`].
//!
//! # Example
//!
//! ```
//! use bvc_core::{BvcSession, ByzantineStrategy, ProtocolKind, RunConfig};
//! use bvc_geometry::Point;
//!
//! // d = 2, f = 1 ⇒ n ≥ max(3f+1, (d+1)f+1) = 4; use n = 5.
//! let config = RunConfig::new(5, 1, 2)
//!     .honest_inputs(vec![
//!         Point::new(vec![0.0, 0.0]),
//!         Point::new(vec![1.0, 0.0]),
//!         Point::new(vec![0.0, 1.0]),
//!         Point::new(vec![1.0, 1.0]),
//!     ])
//!     .adversary(ByzantineStrategy::Equivocate)
//!     .seed(42);
//! let report = BvcSession::new(ProtocolKind::Exact, config)
//!     .expect("parameters satisfy the resilience bound")
//!     .run();
//! assert!(report.verdict().agreement);
//! assert!(report.verdict().validity);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aad;
pub mod approx;
pub mod config;
pub mod convergence;
pub mod directed;
pub mod exact;
pub mod iterative;
pub mod lower_bounds;
pub mod restricted;
pub mod run;
pub mod validity;
pub mod witness;

pub use aad::{AadExchange, AadMsg, CompletedExchange};
pub use approx::{ApproxBvcProcess, ApproxOutput, ByzantineApproxProcess, UpdateRule};
pub use bvc_adversary::{ByzantineStrategy, PointForge};
pub use bvc_net::{FaultError, FaultEvent, FaultKind, FaultPlan, LinkSelector};
pub use bvc_topology::{Sufficiency, Topology};
pub use config::{BvcConfig, BvcError, Setting};
pub use convergence::{
    gamma, gamma_iterative, gamma_witness_optimized, guaranteed_range, round_threshold,
};
pub use directed::{ByzantineDirectedProcess, DirectedExactProcess, DirectedMsg};
pub use exact::{ByzantineExactProcess, ExactBvcProcess, ExactMsg};
pub use iterative::{iterative_round_budget, ByzantineIterativeProcess, IterativeBvcProcess};
pub use lower_bounds::{
    theorem1_control_inputs, theorem1_evidence, theorem1_inputs, theorem4_evidence,
    theorem4_inputs, Theorem1Evidence, Theorem4Evidence,
};
pub use restricted::{
    restricted_round_budget, ByzantineRestrictedAsync, ByzantineRestrictedSync,
    RestrictedAsyncProcess, RestrictedSyncProcess, StateMsg,
};
pub use run::{
    BvcSession, DriverOutcome, InstanceOverrides, ProtocolDriver, ProtocolKind, RunConfig,
    RunReport, Verdict,
};
pub use validity::{
    relaxed_min_processes, require_with_mode, validity_check, ValidityCheck, ValidityMode,
};
pub use witness::{
    average_state, build_zi_full, build_zi_full_cached, build_zi_witness, build_zi_witness_cached,
};
