//! Integration tests: the impossibility constructions of Theorems 1 and 4
//! behave exactly as the paper argues, across dimensions.

use bvc::core::{theorem1_control_inputs, theorem1_evidence, theorem4_evidence};
use bvc::geometry::{gamma_is_empty, leave_one_out_intersection, Point, PointMultiset};

#[test]
fn theorem1_standard_basis_construction_is_infeasible_up_to_dimension_five() {
    for d in 1..=5 {
        let evidence = theorem1_evidence(d);
        assert_eq!(evidence.n, d + 1);
        assert!(
            evidence.intersection_empty,
            "d = {d}: the leave-one-out hulls must have empty intersection"
        );
    }
}

#[test]
fn theorem1_gamma_is_also_empty_for_the_construction() {
    // The Γ operator with f = 1 on the same inputs is empty as well (it is
    // the same intersection when |Y| = d + 1).
    for d in 1..=4 {
        let mut points: Vec<Point> = (0..d).map(|i| Point::standard_basis(d, i)).collect();
        points.push(Point::origin(d));
        let y = PointMultiset::new(points);
        assert!(gamma_is_empty(&y, 1), "d = {d}");
    }
}

#[test]
fn theorem1_control_configuration_is_feasible() {
    // Adding one more (interior) point makes the intersection non-empty:
    // the impossibility is a property of n = d + 1, not of the machinery.
    for d in 1..=4 {
        let control = theorem1_control_inputs(d);
        assert!(
            leave_one_out_intersection(&control).is_some(),
            "d = {d}: control must be feasible"
        );
    }
}

#[test]
fn theorem4_forced_decisions_violate_epsilon_agreement() {
    for d in 1..=4 {
        for &eps in &[0.1, 0.01] {
            let evidence = theorem4_evidence(d, eps);
            assert_eq!(evidence.n, d + 2);
            assert!(
                evidence.violates_epsilon_agreement(),
                "d = {d}, eps = {eps}: {evidence:?}"
            );
            // The forced decisions are 4ε apart, four times the allowance.
            assert!((evidence.max_pairwise_distance - 4.0 * eps).abs() < 1e-9);
        }
    }
}

#[test]
fn theorem4_every_process_is_forced_to_its_own_input() {
    let evidence = theorem4_evidence(3, 0.05);
    assert_eq!(evidence.forced_to_own_input.len(), 4); // p_1 .. p_{d+1}
    assert!(evidence.forced_to_own_input.iter().all(|&b| b));
}

#[test]
fn sufficiency_and_necessity_meet_with_no_gap() {
    // The constructions are infeasible with n = (d+1)f (exact) and n = (d+2)f
    // (approximate) when f = 1, while the algorithms run successfully at
    // n = (d+1)f + 1 and (d+2)f + 1 — the experiments in EXPERIMENTS.md make
    // the sufficiency side concrete; here we spot-check d = 2.
    use bvc::adversary::ByzantineStrategy;
    use bvc::core::{BvcSession, ProtocolKind, RunConfig};
    let d = 2;
    // Exact at n = (d+1)·1 + 1 = 4.
    let run = BvcSession::new(
        ProtocolKind::Exact,
        RunConfig::new(4, 1, d)
            .honest_inputs(vec![
                Point::new(vec![1.0, 0.0]),
                Point::new(vec![0.0, 1.0]),
                Point::new(vec![0.0, 0.0]),
            ])
            .adversary(ByzantineStrategy::Equivocate)
            .seed(2),
    )
    .expect("n = (d+1)f+1 suffices")
    .run();
    assert!(run.verdict().all_hold());
    // Approximate at n = (d+2)·1 + 1 = 5, on the same basis-plus-origin shape
    // that defeats n = d + 2 = 4.
    let run = BvcSession::new(
        ProtocolKind::Approx,
        RunConfig::new(5, 1, d)
            .honest_inputs(vec![
                Point::new(vec![1.0, 0.0]),
                Point::new(vec![0.0, 1.0]),
                Point::new(vec![0.0, 0.0]),
                Point::new(vec![0.5, 0.5]),
            ])
            .adversary(ByzantineStrategy::AntiConvergence)
            .epsilon(0.1)
            .seed(2),
    )
    .expect("n = (d+2)f+1 suffices")
    .run();
    assert!(run.verdict().all_hold());
}
