//! E3 — Theorem 4 (necessity): `n ≥ (d+2)f+1` for Approximate BVC.
//!
//! Reproduces the forced-decision construction: with `n = d + 2`, `f = 1`,
//! inputs `4ε·e_i` for the first `d` processes and `0` for the last two, the
//! admissible decision region (equation (6)) of each process `p_i`
//! (`i ≤ d+1`) collapses to its own input, so two decisions end up `4ε` apart
//! and ε-agreement is impossible.

use bvc_bench::{experiment_header, fmt, mark, Table};
use bvc_core::theorem4_evidence;

fn main() {
    experiment_header(
        "E3: Theorem 4 necessity construction",
        "with n = d+2 and f = 1 the construction forces each p_i to decide its own input; \
         forced decisions differ by 4ε in some coordinate, so ε-agreement fails",
    );

    let mut table = Table::new(&[
        "d",
        "n = d+2",
        "epsilon",
        "all decisions forced (paper: yes)",
        "max pairwise distance (paper: 4ε)",
        "ε-agreement violated",
    ]);
    for d in 1..=6 {
        for &eps in &[0.1, 0.01] {
            let evidence = theorem4_evidence(d, eps);
            table.row(&[
                d.to_string(),
                evidence.n.to_string(),
                fmt(eps, 3),
                mark(evidence.forced_to_own_input.iter().all(|&b| b)),
                fmt(evidence.max_pairwise_distance, 3),
                mark(evidence.violates_epsilon_agreement()),
            ]);
        }
    }
    table.print();
    println!();
    println!(
        "For every dimension the admissible region of each process collapses to its own input \
         and the forced decisions are exactly 4ε apart — the ε-agreement violation at the heart \
         of the Theorem 4 lower bound."
    );
}
