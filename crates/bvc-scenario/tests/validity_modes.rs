//! Property tests pinning the relaxed-validity subsystem to the strict
//! baseline: `AlphaScaled(0)` and `KRelaxed(d)` must produce verdicts
//! byte-identical to `Strict` scoring, declared-strict metadata must be the
//! only JSON difference from an undeclared scenario, and relaxed validity
//! must be monotone in α.

use bvc_scenario::{run_scenario_instance, ScenarioSpec, ValidityMode};

/// An above-threshold Exact BVC scenario (n = 9 ≥ max(3f+1, (d+1)f+1) = 9),
/// so the strict mode admits it and all modes can be compared.
fn above_threshold_spec() -> ScenarioSpec {
    ScenarioSpec::from_toml(
        "[scenario]\nname = \"pin\"\nprotocol = \"exact\"\nn = 9\nf = 2\nd = 3\n\
         [inputs]\ngenerator = \"random-ball\"\ncenter = [0.5, 0.5, 0.5]\nradius = 0.45\n",
    )
    .expect("valid scenario")
}

/// The below-threshold shape of `scenarios/alpha_sweep.toml`.
fn below_threshold_spec() -> ScenarioSpec {
    ScenarioSpec::from_toml(
        "[scenario]\nname = \"sweep\"\nprotocol = \"exact\"\nn = 8\nf = 2\nd = 3\n\
         validity = \"(1+α)-relaxed\"\n\
         [inputs]\ngenerator = \"random-ball\"\ncenter = [0.5, 0.5, 0.5]\nradius = 0.45\n",
    )
    .expect("valid scenario")
}

/// The `"verdict": {...}` object of a serialized outcome, for byte-level
/// comparison independent of the surrounding metadata fields.
fn verdict_json(json: &str) -> &str {
    let start = json.find("\"verdict\"").expect("outcome has a verdict");
    let end = json
        .find(", \"rounds\"")
        .expect("rounds follows the verdict");
    &json[start..end]
}

fn run_with(spec: &ScenarioSpec, seed: u64, validity: Option<&ValidityMode>) -> String {
    run_scenario_instance(
        spec,
        seed,
        spec.strategy,
        spec.policy.clone(),
        None,
        validity,
    )
    .expect("instance runs")
    .to_json()
}

#[test]
fn alpha_zero_verdicts_are_byte_identical_to_strict() {
    let spec = above_threshold_spec();
    for seed in [0, 1, 7] {
        let strict = run_with(&spec, seed, Some(&ValidityMode::Strict));
        let alpha_zero = run_with(&spec, seed, Some(&ValidityMode::AlphaScaled(0.0)));
        assert_eq!(
            verdict_json(&strict),
            verdict_json(&alpha_zero),
            "seed {seed}: α = 0 must score byte-identically to strict"
        );
    }
}

#[test]
fn k_equal_d_verdicts_are_byte_identical_to_strict() {
    let spec = above_threshold_spec();
    for seed in [0, 1, 7] {
        let strict = run_with(&spec, seed, Some(&ValidityMode::Strict));
        let k_d = run_with(&spec, seed, Some(&ValidityMode::KRelaxed(3)));
        assert_eq!(
            verdict_json(&strict),
            verdict_json(&k_d),
            "seed {seed}: k = d must score byte-identically to strict"
        );
    }
}

#[test]
fn undeclared_validity_keeps_the_pre_validity_json() {
    let spec = above_threshold_spec();
    let undeclared = run_with(&spec, 3, None);
    assert!(
        !undeclared.contains("\"validity\": {"),
        "no declared mode ⇒ no validity metadata"
    );
    // Declared strict differs from undeclared only by the metadata object.
    let declared = run_with(&spec, 3, Some(&ValidityMode::Strict));
    let stripped = declared.replace(
        ", \"validity\": {\"mode\": \"strict\", \"required_n\": 9, \"satisfied\": true}",
        "",
    );
    assert_eq!(undeclared, stripped);
}

#[test]
fn below_threshold_alpha_zero_matches_strict_behaviour_and_collapses_with_alpha() {
    let spec = below_threshold_spec();
    // α = 0: strict behaviour — Γ(S) is empty below the Lemma-1 threshold,
    // no process decides, and the check records the unmet strict bound.
    let zero = run_scenario_instance(
        &spec,
        0,
        spec.strategy,
        spec.policy.clone(),
        None,
        Some(&ValidityMode::AlphaScaled(0.0)),
    )
    .expect("admitted by the relaxed family bound");
    assert!(!zero.verdict.termination, "Γ(S) = ∅ below the threshold");
    let meta = zero.validity.as_ref().expect("declared mode ⇒ metadata");
    assert_eq!(meta.required_n, Some(9));
    assert!(!meta.satisfied);
    // A swept α > 0 restores termination, agreement and (relaxed) validity.
    let relaxed = run_scenario_instance(
        &spec,
        0,
        spec.strategy,
        spec.policy.clone(),
        None,
        Some(&ValidityMode::AlphaScaled(3.0)),
    )
    .expect("admitted");
    assert!(relaxed.verdict.all_hold(), "{:?}", relaxed.verdict);
    let meta = relaxed.validity.as_ref().unwrap();
    assert_eq!(meta.required_n, Some(7), "the lowered 3f+1 bound");
    assert!(meta.satisfied);
}

#[test]
fn decisions_valid_at_alpha_stay_valid_at_larger_alpha() {
    // Monotonicity at the run level: a decision that satisfies (1+α)-relaxed
    // validity satisfies it at every α′ > α — the dilated hull only grows.
    use bvc_core::{BvcSession, ByzantineStrategy, ProtocolKind, RunConfig};
    use bvc_geometry::PointMultiset;
    let spec = below_threshold_spec();
    let inputs = bvc_scenario::generate_inputs(&spec, 1).expect("inputs");
    let run = BvcSession::new(
        ProtocolKind::Exact,
        RunConfig::new(8, 2, 3)
            .honest_inputs(inputs.clone())
            .adversary(ByzantineStrategy::Equivocate)
            .seed(1)
            .validity_mode(ValidityMode::AlphaScaled(1.0)),
    )
    .expect("admitted below the strict bound")
    .run();
    assert!(run.verdict().all_hold(), "{:?}", run.verdict());
    let honest = PointMultiset::new(inputs);
    for decision in run.decisions() {
        for alpha in [1.0, 1.5, 2.0, 5.0] {
            assert!(
                ValidityMode::AlphaScaled(alpha).contains(&honest, decision),
                "decision {decision} valid at α = 1 must stay valid at α = {alpha}"
            );
        }
    }
}
