//! Lock-step synchronous round executor.
//!
//! In the paper's synchronous model, computation proceeds in rounds: in every
//! round each process sends messages that are delivered before the next round
//! begins, and message delays are bounded by the round structure.  The
//! [`SyncNetwork`] executor reproduces this: it calls every process once per
//! round with the messages sent to it in the previous round, collects the
//! messages it wants to send, and delivers them (per-sender FIFO) at the
//! start of the next round.
//!
//! Delivery is adjacency-aware: by default the substrate is the paper's
//! complete graph, but [`SyncNetwork::with_topology`] restricts it to a
//! declared [`Topology`] — a message addressed across a non-existent link
//! silently vanishes (the channel does not exist; this is not a fault and is
//! not counted as a drop).  A scripted `Partition` fault is then simply a
//! time-windowed mask layered over the static topology.
//!
//! Byzantine processes are ordinary [`SyncProcess`] implementations — they may
//! return arbitrary messages, including different messages to different
//! receivers (equivocation) or none at all (silence/crash); the adversary
//! crate provides reusable wrappers.

use crate::faults::FaultPlan;
use crate::process::{enforce_local_broadcast, Delivery, ExecutionStats, Outgoing, ProcessId};
use bvc_topology::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A deterministic state machine driven by the synchronous executor.
///
/// `round` is called once per round, starting at round `1`, with the messages
/// delivered to this process at the start of the round (i.e. the messages sent
/// to it during the previous round, ordered by sender id, preserving
/// per-sender FIFO order).  It returns the messages to send during this round.
pub trait SyncProcess {
    /// Message payload type exchanged by the protocol.
    type Msg: Clone;
    /// Decision/output type of the protocol.
    type Output: Clone;

    /// Executes one synchronous round.
    fn round(&mut self, round: usize, inbox: &[Delivery<Self::Msg>]) -> Vec<Outgoing<Self::Msg>>;

    /// The process's decision, once reached.
    fn output(&self) -> Option<Self::Output>;

    /// Optional state report for tracing: the process's current protocol
    /// state as a coordinate vector.  Honest protocol processes override
    /// this so the executor can record the per-round state spread in
    /// `round_close` trace events; the default (`None`) opts out (Byzantine
    /// wrappers, toy processes).  Never called unless tracing is active.
    fn trace_state(&self) -> Option<Vec<f64>> {
        None
    }
}

/// L∞ diameter of the reported states: the largest per-coordinate spread
/// over processes that opted into state reporting.  `None` when fewer than
/// two processes report (or dimensions disagree).
fn state_spread<M: Clone, O: Clone>(
    processes: &[Box<dyn SyncProcess<Msg = M, Output = O>>],
) -> Option<f64> {
    let mut lo: Vec<f64> = Vec::new();
    let mut hi: Vec<f64> = Vec::new();
    let mut reporting = 0usize;
    for process in processes {
        let Some(state) = process.trace_state() else {
            continue;
        };
        if reporting == 0 {
            lo = state.clone();
            hi = state;
        } else {
            if state.len() != lo.len() {
                return None;
            }
            for (i, v) in state.iter().enumerate() {
                lo[i] = lo[i].min(*v);
                hi[i] = hi[i].max(*v);
            }
        }
        reporting += 1;
    }
    if reporting < 2 {
        return None;
    }
    lo.iter()
        .zip(&hi)
        .map(|(l, h)| h - l)
        .fold(None, |acc: Option<f64>, s| {
            Some(acc.map_or(s, |a| a.max(s)))
        })
}

/// Outcome of running a synchronous execution to completion.
#[derive(Debug, Clone)]
pub struct SyncOutcome<O> {
    /// Output of each process, by process index (None if it never decided —
    /// e.g. a crashed or silent Byzantine process).
    pub outputs: Vec<Option<O>>,
    /// Number of rounds actually executed.
    pub rounds: usize,
    /// Message statistics.
    pub stats: ExecutionStats,
}

impl<O> SyncOutcome<O> {
    /// Outputs of the processes whose indices appear in `indices`, in order;
    /// `None` entries are skipped.
    pub fn outputs_of(&self, indices: &[usize]) -> Vec<&O> {
        indices
            .iter()
            .filter_map(|&i| self.outputs.get(i).and_then(|o| o.as_ref()))
            .collect()
    }
}

/// Reusable executor buffers for [`SyncNetwork::run_with_scratch`].
///
/// One execution allocates `n²` per-link FIFO queues; a long-lived scratch
/// keeps those buffers (and their grown capacities) across executions so a
/// multi-instance driver — e.g. a consensus service deciding thousands of
/// instances on a pool of worker threads — pays the allocation once per
/// thread instead of once per instance.  The scratch is cleared on acquire,
/// so reuse is observationally identical to fresh buffers.
#[derive(Debug, Default)]
pub struct SyncScratch<M> {
    pending: Vec<Vec<VecDeque<(usize, M)>>>,
}

impl<M> SyncScratch<M> {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self {
            pending: Vec::new(),
        }
    }

    /// Clears and resizes the buffers to an `n × n` grid of empty queues,
    /// keeping whatever capacity previous executions grew.
    fn reset(&mut self, n: usize) {
        self.pending.truncate(n);
        for row in &mut self.pending {
            row.truncate(n);
            for queue in row.iter_mut() {
                queue.clear();
            }
            while row.len() < n {
                row.push(VecDeque::new());
            }
        }
        while self.pending.len() < n {
            self.pending.push((0..n).map(|_| VecDeque::new()).collect());
        }
    }
}

/// The synchronous executor over `n` processes (complete graph by default).
pub struct SyncNetwork<M, O> {
    processes: Vec<Box<dyn SyncProcess<Msg = M, Output = O>>>,
    max_rounds: usize,
    faults: FaultPlan,
    fault_seed: u64,
    topology: Topology,
    local_broadcast: bool,
}

impl<M: Clone, O: Clone> SyncNetwork<M, O> {
    /// Creates an executor over the given processes (index = process id) with
    /// a safety cap on the number of rounds.
    ///
    /// # Panics
    ///
    /// Panics if `processes` is empty or `max_rounds == 0`.
    pub fn new(
        processes: Vec<Box<dyn SyncProcess<Msg = M, Output = O>>>,
        max_rounds: usize,
    ) -> Self {
        assert!(!processes.is_empty(), "need at least one process");
        assert!(max_rounds > 0, "max_rounds must be positive");
        let topology = Topology::complete(processes.len());
        Self {
            processes,
            max_rounds,
            faults: FaultPlan::new(),
            fault_seed: 0,
            topology,
            local_broadcast: false,
        }
    }

    /// Switches the executor to the **local-broadcast** delivery model: every
    /// per-round outgoing batch is canonicalised with
    /// [`enforce_local_broadcast`] before per-link faults apply, so a
    /// (Byzantine) sender cannot tell different receivers different things in
    /// the same round.  Off by default (point-to-point channels, the paper's
    /// model).
    pub fn with_local_broadcast(mut self, on: bool) -> Self {
        self.local_broadcast = on;
        self
    }

    /// Restricts delivery to the links of `topology` (the complete graph is
    /// the default).  Messages addressed across a missing link vanish
    /// silently — they still count as sent (the process handed them to the
    /// executor) but are neither delivered nor attributed as dropped.
    ///
    /// # Panics
    ///
    /// Panics if `topology.len()` differs from the number of processes.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        assert_eq!(
            topology.len(),
            self.processes.len(),
            "topology size must match the process count"
        );
        self.topology = topology;
        self
    }

    /// Layers an injected-fault schedule over the lock-step rounds; fault
    /// windows are measured in (1-based) round numbers and `seed` drives the
    /// drop decisions.
    ///
    /// Note that delay and partition faults deliberately break the
    /// synchronous model's "delivered before the next round" promise: a
    /// delayed message arrives in a later round, where a round-structured
    /// protocol may ignore or misinterpret it.  That is the point — the
    /// verdict records how the algorithm behaves outside its proven model.
    pub fn with_faults(mut self, faults: FaultPlan, seed: u64) -> Self {
        self.faults = faults;
        self.fault_seed = seed;
        self
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.processes.len()
    }

    /// Always `false`; the constructor rejects empty process sets.
    pub fn is_empty(&self) -> bool {
        self.processes.is_empty()
    }

    /// Runs rounds until every process listed in `wait_for` has produced an
    /// output, or the round cap is reached.  Typically `wait_for` is the set
    /// of non-faulty process indices (Byzantine processes need not terminate).
    pub fn run(self, wait_for: &[usize]) -> SyncOutcome<O> {
        self.run_with_scratch(wait_for, &mut SyncScratch::new())
    }

    /// [`run`](Self::run), reusing the caller's [`SyncScratch`] buffers.
    ///
    /// Behaviourally identical to `run` (the scratch is cleared on entry);
    /// the difference is purely allocation cost, which matters to callers
    /// executing many instances back to back on the same thread.
    pub fn run_with_scratch(
        mut self,
        wait_for: &[usize],
        scratch: &mut SyncScratch<M>,
    ) -> SyncOutcome<O> {
        let n = self.processes.len();
        let mut stats = ExecutionStats::for_processes(n);
        let mut fault_rng = StdRng::seed_from_u64(self.fault_seed ^ 0xFA01_7FA0_17FA_017F);
        // pending[from][to] is a FIFO queue of (due_round, message); without
        // faults a message sent in round r is due in round r + 1, reproducing
        // the plain lock-step executor exactly.
        scratch.reset(n);
        let pending = &mut scratch.pending;
        // inboxes[i] = messages delivered to process i at the start of the
        // upcoming round.
        let mut inboxes: Vec<Vec<Delivery<M>>> = vec![Vec::new(); n];
        let mut rounds_executed = 0;

        for round in 1..=self.max_rounds {
            rounds_executed = round;
            bvc_trace::emit(|| bvc_trace::TraceEvent::RoundOpen { round });
            for event in self.faults.events() {
                if event.start == round {
                    bvc_trace::emit(|| bvc_trace::TraceEvent::FaultWindow {
                        round,
                        kind: event.kind.name().to_string(),
                        detail: format!("rounds {}..{}", event.start, event.end()),
                    });
                }
            }
            for (index, process) in self.processes.iter_mut().enumerate() {
                let mut outgoing = process.round(round, &inboxes[index]);
                if self.local_broadcast {
                    if let Some((receivers, slots)) = enforce_local_broadcast(&mut outgoing) {
                        bvc_trace::emit(|| bvc_trace::TraceEvent::LocalBroadcast {
                            time: round,
                            from: index,
                            receivers,
                            slots,
                        });
                    }
                }
                stats.record_sent(index, outgoing.len());
                for Outgoing { to, msg } in outgoing {
                    bvc_trace::emit(|| bvc_trace::TraceEvent::Send {
                        time: round,
                        from: index,
                        to: to.index(),
                    });
                    if to.index() >= n || !self.topology.has_edge(index, to.index()) {
                        bvc_trace::emit(|| bvc_trace::TraceEvent::Vanish {
                            time: round,
                            from: index,
                            to: to.index(),
                        });
                        continue;
                    }
                    let drop_probability = self.faults.drop_probability(round, index, to.index());
                    if drop_probability > 0.0 && fault_rng.gen_bool(drop_probability) {
                        stats.record_dropped(index);
                        bvc_trace::emit(|| bvc_trace::TraceEvent::Drop {
                            time: round,
                            from: index,
                            to: to.index(),
                        });
                        continue;
                    }
                    let due = (round + 1).saturating_add(self.faults.extra_latency(
                        round,
                        index,
                        to.index(),
                    ));
                    pending[index][to.index()].push_back((due, msg));
                }
            }
            // Deliver everything due by the next round on links no partition
            // blocks then.  Iterating senders in id order gives the documented
            // sorted-by-sender inbox; popping in queue order preserves
            // per-sender FIFO, and a not-yet-due head blocks the rest of its
            // channel so FIFO survives latency faults too.
            let next_round = round + 1;
            let mut next_inboxes: Vec<Vec<Delivery<M>>> = vec![Vec::new(); n];
            #[allow(clippy::needless_range_loop)]
            for from in 0..n {
                for to in 0..n {
                    if self.faults.blocked(next_round, from, to) {
                        continue;
                    }
                    while pending[from][to]
                        .front()
                        .is_some_and(|&(due, _)| due <= next_round)
                    {
                        let (_, msg) = pending[from][to].pop_front().expect("head checked above");
                        next_inboxes[to].push(Delivery::new(ProcessId::new(from), msg));
                        stats.record_delivered(to);
                        bvc_trace::emit(|| bvc_trace::TraceEvent::Deliver {
                            time: next_round,
                            from,
                            to,
                        });
                    }
                }
            }
            inboxes = next_inboxes;

            // The spread computation walks every process, so gate it on an
            // installed tracer rather than relying on emit's lazy closure.
            if bvc_trace::is_active() {
                let spread = state_spread(&self.processes);
                bvc_trace::emit(|| bvc_trace::TraceEvent::RoundClose { round, spread });
            }

            let all_decided = wait_for
                .iter()
                .all(|&i| self.processes[i].output().is_some());
            if all_decided {
                break;
            }
        }

        stats.steps = rounds_executed;
        let outputs = self.processes.iter().map(|p| p.output()).collect();
        SyncOutcome {
            outputs,
            rounds: rounds_executed,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::broadcast_to_all;

    /// A toy protocol: every process broadcasts its value each round; after
    /// `target_rounds` rounds it outputs the sum of everything it received in
    /// the last round plus its own value.
    struct SummingProcess {
        id: ProcessId,
        n: usize,
        value: u64,
        target_rounds: usize,
        result: Option<u64>,
    }

    impl SyncProcess for SummingProcess {
        type Msg = u64;
        type Output = u64;

        fn round(&mut self, round: usize, inbox: &[Delivery<u64>]) -> Vec<Outgoing<u64>> {
            if round > self.target_rounds {
                return Vec::new();
            }
            if round == self.target_rounds {
                let sum: u64 = inbox.iter().map(|d| d.msg).sum::<u64>() + self.value;
                self.result = Some(sum);
            }
            broadcast_to_all(self.n, Some(self.id), &self.value)
        }

        fn output(&self) -> Option<u64> {
            self.result
        }
    }

    fn summing_network(values: &[u64], target_rounds: usize) -> SyncNetwork<u64, u64> {
        let n = values.len();
        let processes: Vec<Box<dyn SyncProcess<Msg = u64, Output = u64>>> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                Box::new(SummingProcess {
                    id: ProcessId::new(i),
                    n,
                    value: v,
                    target_rounds,
                    result: None,
                }) as Box<dyn SyncProcess<Msg = u64, Output = u64>>
            })
            .collect();
        SyncNetwork::new(processes, 10)
    }

    #[test]
    fn all_processes_receive_all_messages_each_round() {
        let outcome = summing_network(&[1, 2, 3, 4], 2).run(&[0, 1, 2, 3]);
        // After round 2 every process has the other three values plus its own.
        assert_eq!(
            outcome.outputs,
            vec![Some(10), Some(10), Some(10), Some(10)]
        );
        assert_eq!(outcome.rounds, 2);
    }

    #[test]
    fn run_stops_as_soon_as_waited_processes_decide() {
        let outcome = summing_network(&[5, 6], 1).run(&[0, 1]);
        assert_eq!(outcome.rounds, 1);
        // Round 1 has an empty inbox, so each output is just its own value.
        assert_eq!(outcome.outputs, vec![Some(5), Some(6)]);
    }

    #[test]
    fn round_cap_prevents_infinite_runs() {
        // target_rounds beyond the cap: nobody decides, executor stops at cap.
        let outcome = summing_network(&[1, 1, 1], 99).run(&[0, 1, 2]);
        assert_eq!(outcome.rounds, 10);
        assert!(outcome.outputs.iter().all(|o| o.is_none()));
    }

    #[test]
    fn stats_count_messages() {
        let outcome = summing_network(&[1, 2, 3], 2).run(&[0, 1, 2]);
        // 3 processes broadcast to 2 others for 2 rounds = 12 messages.
        assert_eq!(outcome.stats.messages_sent, 12);
        assert_eq!(outcome.stats.messages_delivered, 12);
        assert_eq!(outcome.stats.steps, 2);
    }

    #[test]
    fn outputs_of_selects_indices() {
        let outcome = summing_network(&[1, 2, 3, 4], 2).run(&[0, 1, 2, 3]);
        let selected = outcome.outputs_of(&[1, 3]);
        assert_eq!(selected, vec![&10, &10]);
    }

    #[test]
    fn inbox_is_sorted_by_sender() {
        struct Recorder {
            id: ProcessId,
            n: usize,
            seen: Vec<usize>,
            done: Option<Vec<usize>>,
        }
        impl SyncProcess for Recorder {
            type Msg = ();
            type Output = Vec<usize>;
            fn round(&mut self, round: usize, inbox: &[Delivery<()>]) -> Vec<Outgoing<()>> {
                if round == 2 {
                    self.seen = inbox.iter().map(|d| d.from.index()).collect();
                    self.done = Some(self.seen.clone());
                    return Vec::new();
                }
                broadcast_to_all(self.n, Some(self.id), &())
            }
            fn output(&self) -> Option<Vec<usize>> {
                self.done.clone()
            }
        }
        let n = 4;
        let processes: Vec<Box<dyn SyncProcess<Msg = (), Output = Vec<usize>>>> = (0..n)
            .map(|i| {
                Box::new(Recorder {
                    id: ProcessId::new(i),
                    n,
                    seen: Vec::new(),
                    done: None,
                }) as Box<dyn SyncProcess<Msg = (), Output = Vec<usize>>>
            })
            .collect();
        let outcome = SyncNetwork::new(processes, 5).run(&(0..n).collect::<Vec<_>>());
        for (i, out) in outcome.outputs.iter().enumerate() {
            let senders = out.as_ref().unwrap();
            let expected: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            assert_eq!(senders, &expected);
        }
    }

    #[test]
    fn scratch_reuse_is_identical_to_fresh_buffers() {
        let all: Vec<usize> = (0..4).collect();
        let fresh = summing_network(&[1, 2, 3, 4], 2).run(&all);
        let mut scratch = SyncScratch::new();
        // Dirty the scratch with a differently-sized execution first.
        let _ = summing_network(&[9, 9, 9, 9, 9], 3)
            .run_with_scratch(&(0..5).collect::<Vec<_>>(), &mut scratch);
        let reused = summing_network(&[1, 2, 3, 4], 2).run_with_scratch(&all, &mut scratch);
        assert_eq!(fresh.outputs, reused.outputs);
        assert_eq!(fresh.stats, reused.stats);
        assert_eq!(fresh.rounds, reused.rounds);
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn empty_network_panics() {
        let processes: Vec<Box<dyn SyncProcess<Msg = (), Output = ()>>> = Vec::new();
        let _ = SyncNetwork::new(processes, 1);
    }

    // ------------------------------------------------------------------
    // Declared topologies
    // ------------------------------------------------------------------

    use bvc_topology::Topology;

    #[test]
    fn complete_topology_is_identical_to_the_default() {
        let all: Vec<usize> = (0..4).collect();
        let plain = summing_network(&[1, 2, 3, 4], 2).run(&all);
        let explicit = summing_network(&[1, 2, 3, 4], 2)
            .with_topology(Topology::complete(4))
            .run(&all);
        assert_eq!(plain.outputs, explicit.outputs);
        assert_eq!(plain.stats, explicit.stats);
    }

    #[test]
    fn ring_topology_delivers_only_to_neighbors() {
        // Every process broadcasts to all; on the ring only i ± 1 receive, so
        // each round-2 sum is own value plus the two ring neighbors'.
        let all: Vec<usize> = (0..4).collect();
        let outcome = summing_network(&[1, 2, 4, 8], 2)
            .with_topology(Topology::ring(4))
            .run(&all);
        assert_eq!(
            outcome.outputs,
            vec![
                Some(1 + 2 + 8),
                Some(2 + 1 + 4),
                Some(4 + 2 + 8),
                Some(8 + 4 + 1)
            ]
        );
        // Sent counts the handed-over broadcasts; only on-link ones deliver.
        assert_eq!(outcome.stats.messages_sent, 24);
        assert_eq!(outcome.stats.messages_delivered, 16);
        assert_eq!(
            outcome.stats.messages_dropped, 0,
            "missing links are not drops"
        );
    }

    #[test]
    #[should_panic(expected = "topology size must match")]
    fn topology_size_mismatch_panics() {
        let _ = summing_network(&[1, 2, 3], 1).with_topology(Topology::ring(4));
    }

    // ------------------------------------------------------------------
    // Local-broadcast delivery
    // ------------------------------------------------------------------

    /// Process 0 equivocates: value 1 to process 1, value 2 to process 2.
    /// The others are silent and record what they hear from process 0.
    struct Equivocator;
    struct Listener {
        heard: Option<u64>,
        rounds: usize,
    }
    impl SyncProcess for Equivocator {
        type Msg = u64;
        type Output = u64;
        fn round(&mut self, round: usize, _inbox: &[Delivery<u64>]) -> Vec<Outgoing<u64>> {
            if round == 1 {
                vec![
                    Outgoing::new(ProcessId::new(1), 1),
                    Outgoing::new(ProcessId::new(2), 2),
                ]
            } else {
                Vec::new()
            }
        }
        fn output(&self) -> Option<u64> {
            Some(0)
        }
    }
    impl SyncProcess for Listener {
        type Msg = u64;
        type Output = u64;
        fn round(&mut self, _round: usize, inbox: &[Delivery<u64>]) -> Vec<Outgoing<u64>> {
            if let Some(d) = inbox.iter().find(|d| d.from == ProcessId::new(0)) {
                self.heard = Some(d.msg);
            }
            self.rounds += 1;
            Vec::new()
        }
        fn output(&self) -> Option<u64> {
            if self.rounds >= 2 {
                Some(self.heard.unwrap_or(u64::MAX))
            } else {
                None
            }
        }
    }

    fn equivocation_network() -> SyncNetwork<u64, u64> {
        let processes: Vec<Box<dyn SyncProcess<Msg = u64, Output = u64>>> = vec![
            Box::new(Equivocator),
            Box::new(Listener {
                heard: None,
                rounds: 0,
            }),
            Box::new(Listener {
                heard: None,
                rounds: 0,
            }),
        ];
        SyncNetwork::new(processes, 5)
    }

    #[test]
    fn point_to_point_permits_equivocation() {
        let outcome = equivocation_network().run(&[1, 2]);
        assert_eq!(outcome.outputs[1], Some(1));
        assert_eq!(outcome.outputs[2], Some(2));
    }

    #[test]
    fn local_broadcast_forces_receiver_consistency() {
        let outcome = equivocation_network()
            .with_local_broadcast(true)
            .run(&[1, 2]);
        // Both listeners observe the lowest receiver's payload.
        assert_eq!(outcome.outputs[1], Some(1));
        assert_eq!(outcome.outputs[2], Some(1));
    }

    #[test]
    fn local_broadcast_composes_with_drop_faults() {
        // Canonicalise first, then drop the (already consistent) copy on the
        // 0 → 1 link only: process 2 still hears the canonical value.
        let plan = FaultPlan::new()
            .with_event(FaultEvent {
                kind: FaultKind::Drop {
                    rate: 1.0,
                    links: LinkSelector::Directed(vec![ProcessId::new(0)], vec![ProcessId::new(1)]),
                },
                start: 1,
                duration: 1,
            })
            .unwrap();
        let outcome = equivocation_network()
            .with_local_broadcast(true)
            .with_faults(plan, 3)
            .run(&[1, 2]);
        assert_eq!(outcome.outputs[1], Some(u64::MAX), "its copy was dropped");
        assert_eq!(outcome.outputs[2], Some(1), "canonical payload survives");
        assert_eq!(outcome.stats.messages_dropped, 1);
    }

    #[test]
    fn local_broadcast_is_identity_for_honest_broadcasters() {
        let all: Vec<usize> = (0..4).collect();
        let plain = summing_network(&[1, 2, 3, 4], 2).run(&all);
        let lb = summing_network(&[1, 2, 3, 4], 2)
            .with_local_broadcast(true)
            .run(&all);
        assert_eq!(plain.outputs, lb.outputs);
        assert_eq!(plain.stats, lb.stats);
    }

    // ------------------------------------------------------------------
    // Injected network faults
    // ------------------------------------------------------------------

    use crate::faults::{FaultEvent, FaultKind, FaultPlan, LinkSelector};

    #[test]
    fn empty_fault_plan_is_identical_to_the_plain_executor() {
        let all: Vec<usize> = (0..4).collect();
        let plain = summing_network(&[1, 2, 3, 4], 2).run(&all);
        let faulted = summing_network(&[1, 2, 3, 4], 2)
            .with_faults(FaultPlan::new(), 99)
            .run(&all);
        assert_eq!(plain.outputs, faulted.outputs);
        assert_eq!(plain.stats, faulted.stats);
    }

    #[test]
    fn round_scoped_drop_fault_loses_messages_and_attributes_them() {
        // Drop everything process 0 sends during round 1 only.
        let plan = FaultPlan::new()
            .with_event(FaultEvent {
                kind: FaultKind::Drop {
                    rate: 1.0,
                    links: LinkSelector::From(vec![ProcessId::new(0)]),
                },
                start: 1,
                duration: 1,
            })
            .unwrap();
        let all: Vec<usize> = (0..3).collect();
        let outcome = summing_network(&[10, 1, 2], 2)
            .with_faults(plan, 7)
            .run(&all);
        // Round 2 inboxes of processes 1 and 2 are missing process 0's value.
        assert_eq!(outcome.outputs, vec![Some(13), Some(3), Some(3)]);
        assert_eq!(outcome.stats.messages_dropped, 2);
        assert_eq!(outcome.stats.per_process[0].dropped, 2);
    }

    #[test]
    fn latency_fault_moves_messages_to_a_later_round() {
        // Delay round-1 messages by one extra round: round-2 inboxes are
        // empty, the delayed values surface in round 3.
        struct LastInboxSum {
            id: ProcessId,
            n: usize,
            value: u64,
            sums: Vec<u64>,
        }
        impl SyncProcess for LastInboxSum {
            type Msg = u64;
            type Output = Vec<u64>;
            fn round(&mut self, round: usize, inbox: &[Delivery<u64>]) -> Vec<Outgoing<u64>> {
                self.sums.push(inbox.iter().map(|d| d.msg).sum());
                if round == 1 {
                    broadcast_to_all(self.n, Some(self.id), &self.value)
                } else {
                    Vec::new()
                }
            }
            fn output(&self) -> Option<Vec<u64>> {
                if self.sums.len() >= 3 {
                    Some(self.sums.clone())
                } else {
                    None
                }
            }
        }
        let n = 3;
        let processes: Vec<Box<dyn SyncProcess<Msg = u64, Output = Vec<u64>>>> = (0..n)
            .map(|i| {
                Box::new(LastInboxSum {
                    id: ProcessId::new(i),
                    n,
                    value: (i + 1) as u64,
                    sums: Vec::new(),
                }) as Box<dyn SyncProcess<Msg = u64, Output = Vec<u64>>>
            })
            .collect();
        let plan = FaultPlan::new()
            .with_event(FaultEvent {
                kind: FaultKind::Latency {
                    extra: 1,
                    links: LinkSelector::All,
                },
                start: 1,
                duration: 1,
            })
            .unwrap();
        let outcome = SyncNetwork::new(processes, 5)
            .with_faults(plan, 0)
            .run(&(0..n).collect::<Vec<_>>());
        // sums[0] = round 1 (nothing yet), sums[1] = round 2 (delayed away),
        // sums[2] = round 3 (the delayed broadcasts arrive).
        let expected_last: Vec<u64> = vec![5, 4, 3];
        for (i, out) in outcome.outputs.iter().enumerate() {
            let sums = out.as_ref().expect("everyone reaches round 3");
            assert_eq!(sums[0], 0);
            assert_eq!(sums[1], 0);
            assert_eq!(sums[2], expected_last[i]);
        }
    }

    #[test]
    fn partition_defers_cross_group_messages_until_the_heal() {
        // Partition {0} from the rest during rounds 1..=2; its round-1
        // broadcast reaches the others in round 4 (first unblocked round is
        // 3, delivered into round-3 end-of-round inboxes... i.e. seen by the
        // processes at the start of round 4 at the latest).
        struct FirstSeen {
            id: ProcessId,
            n: usize,
            seen_zero_in: Option<usize>,
            done: Option<usize>,
        }
        impl SyncProcess for FirstSeen {
            type Msg = u64;
            type Output = usize;
            fn round(&mut self, round: usize, inbox: &[Delivery<u64>]) -> Vec<Outgoing<u64>> {
                if self.seen_zero_in.is_none() && inbox.iter().any(|d| d.from == ProcessId::new(0))
                {
                    self.seen_zero_in = Some(round);
                    self.done = Some(round);
                }
                if round == 1 {
                    broadcast_to_all(self.n, Some(self.id), &(self.id.index() as u64))
                } else {
                    Vec::new()
                }
            }
            fn output(&self) -> Option<usize> {
                self.done
            }
        }
        let n = 3;
        let processes: Vec<Box<dyn SyncProcess<Msg = u64, Output = usize>>> = (0..n)
            .map(|i| {
                Box::new(FirstSeen {
                    id: ProcessId::new(i),
                    n,
                    seen_zero_in: None,
                    done: None,
                }) as Box<dyn SyncProcess<Msg = u64, Output = usize>>
            })
            .collect();
        let plan = FaultPlan::new()
            .with_event(FaultEvent {
                kind: FaultKind::Partition {
                    groups: vec![vec![ProcessId::new(0)]],
                },
                start: 1,
                duration: 2,
            })
            .unwrap();
        let outcome = SyncNetwork::new(processes, 10)
            .with_faults(plan, 0)
            .run(&[1, 2]);
        // The partition blocks delivery into rounds 1 and 2; round 3 is the
        // first unblocked delivery round, so processes 1 and 2 first see
        // process 0's broadcast in round 3 — delayed, not lost.
        assert_eq!(outcome.outputs[1], Some(3));
        assert_eq!(outcome.outputs[2], Some(3));
        assert_eq!(outcome.stats.messages_dropped, 0);
    }
}
