//! Baseline: per-dimension scalar Byzantine consensus.
//!
//! Section 1 of the paper motivates vector consensus by showing that running
//! a scalar Byzantine consensus independently on every coordinate does **not**
//! solve the vector problem: each coordinate of the decision can individually
//! lie between the honest minima and maxima of that coordinate while the
//! combined vector falls outside the convex hull of the honest input vectors
//! (the probability-vector example with inputs `[2/3,1/6,1/6]`,
//! `[1/6,2/3,1/6]`, `[1/6,1/6,2/3]` and possible decision `[1/6,1/6,1/6]`).
//!
//! This module implements that baseline faithfully: Step 1 (Byzantine
//! broadcast of all inputs) is reused unchanged from the Exact BVC
//! implementation, and Step 2 is replaced by an independent scalar decision
//! per coordinate.  Experiment E8 runs both algorithms on the same inputs and
//! reports how often the baseline violates vector validity.

use bvc_core::{BvcConfig, ExactBvcProcess, ExactMsg};
use bvc_geometry::{Point, PointMultiset};
use bvc_net::{Delivery, Outgoing, SyncProcess};

/// Which point of the per-coordinate admissible interval the scalar baseline
/// picks.
///
/// For scalar Byzantine consensus with `n` values of which at most `f` are
/// faulty, any value between the `(f+1)`-th smallest and the `(n−f)`-th
/// smallest received value satisfies scalar validity.  The choice within that
/// interval is the baseline's degree of freedom — and the source of the
/// vector-validity violation the paper points out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarPick {
    /// The lower end of the admissible interval (the `(f+1)`-th smallest).
    Lower,
    /// The midpoint of the admissible interval.
    Middle,
    /// The upper end of the admissible interval (the `(n−f)`-th smallest).
    Upper,
}

/// The admissible interval of scalar Byzantine consensus on `values` with at
/// most `f` faults: `[(f+1)-th smallest, (n−f)-th smallest]`.
///
/// # Panics
///
/// Panics if `values.len() <= 2f`.
pub fn scalar_safe_interval(values: &[f64], f: usize) -> (f64, f64) {
    assert!(
        values.len() > 2 * f,
        "need more than 2f values to trim f from each side"
    );
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
    (sorted[f], sorted[sorted.len() - 1 - f])
}

/// The per-dimension scalar decision on the agreed multiset `s`: every
/// coordinate is decided independently by scalar consensus with the given
/// pick rule.
///
/// # Panics
///
/// Panics if `s.len() <= 2f`.
pub fn per_dimension_decision(s: &PointMultiset, f: usize, pick: ScalarPick) -> Point {
    let coords = (0..s.dim())
        .map(|l| {
            let values: Vec<f64> = s.iter().map(|p| p.coord(l)).collect();
            let (lo, hi) = scalar_safe_interval(&values, f);
            match pick {
                ScalarPick::Lower => lo,
                ScalarPick::Middle => 0.5 * (lo + hi),
                ScalarPick::Upper => hi,
            }
        })
        .collect();
    Point::new(coords)
}

/// A process that runs Step 1 of the Exact BVC algorithm (Byzantine broadcast
/// of all inputs) but replaces Step 2 by independent per-dimension scalar
/// consensus — the baseline the paper argues against.
pub struct PerDimensionScalarProcess {
    inner: ExactBvcProcess,
    f: usize,
    pick: ScalarPick,
}

impl PerDimensionScalarProcess {
    /// Creates the baseline process with index `me`, input `input` and the
    /// given per-coordinate pick rule.
    pub fn new(config: BvcConfig, me: usize, input: Point, pick: ScalarPick) -> Self {
        let f = config.f;
        Self {
            inner: ExactBvcProcess::new(config, me, input),
            f,
            pick,
        }
    }

    /// Number of synchronous rounds until the decision is available.
    pub fn total_rounds(config: &BvcConfig) -> usize {
        ExactBvcProcess::total_rounds(config)
    }
}

impl SyncProcess for PerDimensionScalarProcess {
    type Msg = ExactMsg;
    type Output = Point;

    fn round(&mut self, round: usize, inbox: &[Delivery<ExactMsg>]) -> Vec<Outgoing<ExactMsg>> {
        self.inner.round(round, inbox)
    }

    fn output(&self) -> Option<Point> {
        self.inner
            .agreed_multiset()
            .map(|s| per_dimension_decision(s, self.f, self.pick))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvc_geometry::ConvexHull;

    fn probability_example() -> PointMultiset {
        // The intro example: three honest probability vectors plus one faulty
        // report (here: the all-zero vector, which drags each coordinate's
        // lower trim down to 1/6).
        PointMultiset::new(vec![
            Point::new(vec![2.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0]),
            Point::new(vec![1.0 / 6.0, 2.0 / 3.0, 1.0 / 6.0]),
            Point::new(vec![1.0 / 6.0, 1.0 / 6.0, 2.0 / 3.0]),
            Point::new(vec![0.0, 0.0, 0.0]),
        ])
    }

    #[test]
    fn scalar_safe_interval_trims_f_from_each_side() {
        let (lo, hi) = scalar_safe_interval(&[5.0, 1.0, 3.0, 100.0], 1);
        assert_eq!(lo, 3.0);
        assert_eq!(hi, 5.0);
    }

    #[test]
    #[should_panic(expected = "more than 2f")]
    fn scalar_safe_interval_needs_enough_values() {
        let _ = scalar_safe_interval(&[1.0, 2.0], 1);
    }

    #[test]
    fn per_dimension_lower_pick_reproduces_the_papers_counterexample() {
        // With the Lower pick, every coordinate decides 1/6, giving the vector
        // [1/6, 1/6, 1/6], which is NOT in the hull of the three honest
        // probability vectors (their hull lies in the plane Σ = 1).
        let s = probability_example();
        let decision = per_dimension_decision(&s, 1, ScalarPick::Lower);
        assert!(decision.approx_eq(&Point::new(vec![1.0 / 6.0; 3]), 1e-9));
        let honest_hull = ConvexHull::new(PointMultiset::new(s.points()[..3].to_vec()));
        assert!(
            !honest_hull.contains(&decision),
            "the baseline decision must violate vector validity"
        );
        // Each coordinate individually satisfies scalar validity: it lies
        // within the range of honest values of that coordinate.
        for l in 0..3 {
            let honest: Vec<f64> = s.points()[..3].iter().map(|p| p.coord(l)).collect();
            let min = honest.iter().cloned().fold(f64::MAX, f64::min);
            let max = honest.iter().cloned().fold(f64::MIN, f64::max);
            assert!(decision.coord(l) >= min - 1e-9 && decision.coord(l) <= max + 1e-9);
        }
    }

    #[test]
    fn middle_and_upper_picks_are_within_the_interval() {
        let s = probability_example();
        let lower = per_dimension_decision(&s, 1, ScalarPick::Lower);
        let middle = per_dimension_decision(&s, 1, ScalarPick::Middle);
        let upper = per_dimension_decision(&s, 1, ScalarPick::Upper);
        for l in 0..3 {
            assert!(lower.coord(l) <= middle.coord(l) + 1e-12);
            assert!(middle.coord(l) <= upper.coord(l) + 1e-12);
        }
    }

    #[test]
    fn baseline_process_decides_after_step_one() {
        use bvc_net::SyncNetwork;
        let config = BvcConfig::new(4, 1, 3).unwrap();
        let inputs = [
            Point::new(vec![2.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0]),
            Point::new(vec![1.0 / 6.0, 2.0 / 3.0, 1.0 / 6.0]),
            Point::new(vec![1.0 / 6.0, 1.0 / 6.0, 2.0 / 3.0]),
            Point::new(vec![0.0, 0.0, 0.0]),
        ];
        // Note: with 4 processes and f = 1, (d+1)f+1 = 4 is violated for the
        // *vector* algorithm's Γ step, but the baseline never calls Γ — it is
        // exactly the "scalar consensus per dimension" the paper's example
        // uses, and n = 4 ≥ 3f + 1 suffices for the scalar broadcasts.
        let processes: Vec<Box<dyn SyncProcess<Msg = ExactMsg, Output = Point>>> = inputs
            .iter()
            .enumerate()
            .map(|(i, p)| {
                Box::new(PerDimensionScalarProcess::new(
                    config.clone(),
                    i,
                    p.clone(),
                    ScalarPick::Lower,
                )) as Box<dyn SyncProcess<Msg = ExactMsg, Output = Point>>
            })
            .collect();
        let outcome = SyncNetwork::new(processes, PerDimensionScalarProcess::total_rounds(&config))
            .run(&[0, 1, 2, 3]);
        let decisions: Vec<Point> = outcome.outputs.iter().map(|o| o.clone().unwrap()).collect();
        // All processes agree (they hold the same S and apply the same rule).
        for pair in decisions.windows(2) {
            assert!(pair[0].approx_eq(&pair[1], 1e-9));
        }
        // And the common decision violates vector validity w.r.t. the first
        // three (honest) inputs.
        let honest_hull = ConvexHull::new(PointMultiset::new(inputs[..3].to_vec()));
        assert!(!honest_hull.contains(&decisions[0]));
    }
}
