//! Deterministic worker pool for heavy subset-hull scans.
//!
//! The Γ engine's two hot scans — the membership stream (`contains`) and the
//! active-set verification pass (`find_point`) — walk the `C(m, m−f)` subset
//! hulls in ordinal order looking for the *first* hull that refutes a
//! candidate point.  At `d ≥ 3` the subset count crosses from dozens into
//! hundreds and the scan dominates the query, so shapes with at least
//! [`HEAVY_SUBSET_THRESHOLD`] subset hulls are fanned out across a pool of
//! scoped worker threads (the campaign-pool pattern of `bvc-scenario`, moved
//! down to where the cost is).
//!
//! # Determinism contract
//!
//! Results are **byte-identical at every worker count** by construction, not
//! by scheduling luck:
//!
//! * The scan returns the *minimum* matching ordinal.  Workers claim ordinals
//!   off an atomic cursor in any order, but the minimum of a fixed predicate
//!   over a fixed ordinal range is schedule-invariant, and it equals exactly
//!   the ordinal a sequential first-match scan would report.
//! * Membership predicates are evaluated via
//!   [`unrank_combination`](crate::combinatorics::unrank_combination)
//!   (random-access into the lexicographic combination stream), so a worker
//!   never depends on another worker's progress.
//! * Trace streams cannot observe the pool: scans run on spawned threads
//!   **even at one worker**, and `bvc-trace` scopes are thread-local, so the
//!   workers' LP solves emit no events at any worker count.  (Heavy shapes
//!   are also strictly above everything the pinned corpora exercise.)
//!
//! Worker LP solves lease long-lived [`SimplexWorkspace`]s from a parked
//! pool, so tableau buffers and warm-start column priorities survive across
//! rounds even though the scan threads themselves are scoped.

use bvc_lp::SimplexWorkspace;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Subset-hull count at which the Γ scans switch from the sequential
/// streamed walk to the worker pool.  Chosen above every shape the pinned
/// determinism corpora exercise (their largest is `C(9, 7) = 36`) and below
/// the d ≥ 3 cliff shapes (`C(10, 8) = 45`, `C(13, 10) = 286`).
pub const HEAVY_SUBSET_THRESHOLD: usize = 40;

/// Configured worker count; `0` means "resolve automatically" (environment,
/// then available parallelism).
static GAMMA_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Workspaces parked between scans so worker solves keep their tableau
/// buffers and warm-start priorities across rounds.
static PARKED_WORKSPACES: Mutex<Vec<SimplexWorkspace>> = Mutex::new(Vec::new());

/// Upper bound on parked workspaces (a handful of threads' worth; beyond
/// that, extra workspaces are simply dropped).
const MAX_PARKED: usize = 32;

/// Overrides the worker count of the heavy-scan pool (`0` restores the
/// automatic choice).  Results are byte-identical at every setting; only
/// wall-clock time changes.
pub fn set_gamma_workers(workers: usize) {
    GAMMA_WORKERS.store(workers, Ordering::Relaxed);
}

/// The worker count the next heavy scan will use: the programmatic override
/// ([`set_gamma_workers`]) if set, else the `BVC_GAMMA_WORKERS` environment
/// variable, else the available parallelism (capped at 8).
pub fn gamma_workers() -> usize {
    let configured = GAMMA_WORKERS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    if let Some(n) = std::env::var("BVC_GAMMA_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(8)
}

fn lease_workspace() -> SimplexWorkspace {
    PARKED_WORKSPACES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .pop()
        .unwrap_or_default()
}

fn park_workspace(workspace: SimplexWorkspace) {
    let mut parked = PARKED_WORKSPACES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if parked.len() < MAX_PARKED {
        parked.push(workspace);
    }
}

/// The minimum ordinal in `0..count` for which `test` holds, or `None` when
/// none does — the pool-backed equivalent of a sequential first-match scan.
///
/// `test` must be a pure function of the ordinal (it is called from worker
/// threads, possibly more than once per ordinal across retries of the outer
/// loop, and its per-ordinal verdict must not depend on scan order).  The
/// supplied workspace is a long-lived lease for the worker's LP solves.
pub(crate) fn min_matching_ordinal(
    count: usize,
    test: &(dyn Fn(usize, &mut SimplexWorkspace) -> bool + Sync),
) -> Option<usize> {
    if count == 0 {
        return None;
    }
    let workers = gamma_workers().clamp(1, count);
    let cursor = AtomicUsize::new(0);
    let best = AtomicUsize::new(usize::MAX);
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut workspace = lease_workspace();
                loop {
                    let ordinal = cursor.fetch_add(1, Ordering::Relaxed);
                    // Ordinals at or above the best match so far cannot
                    // improve the minimum; once the cursor passes the best,
                    // every remaining claim is skippable and the worker
                    // retires.
                    if ordinal >= count || ordinal >= best.load(Ordering::Relaxed) {
                        break;
                    }
                    if test(ordinal, &mut workspace) {
                        best.fetch_min(ordinal, Ordering::Relaxed);
                    }
                }
                park_workspace(workspace);
            });
        }
    });
    let found = best.load(Ordering::Relaxed);
    (found != usize::MAX).then_some(found)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_matching_ordinal_equals_sequential_first_match() {
        // A predicate with several matches: the pool must report the least.
        let matches = [7usize, 23, 5, 61];
        for workers in [1, 2, 4, 8] {
            set_gamma_workers(workers);
            let found = min_matching_ordinal(64, &|o, _ws| matches.contains(&o));
            assert_eq!(found, Some(5), "workers={workers}");
            let none = min_matching_ordinal(64, &|_, _| false);
            assert_eq!(none, None, "workers={workers}");
        }
        set_gamma_workers(0);
    }

    #[test]
    fn empty_range_has_no_match() {
        assert_eq!(min_matching_ordinal(0, &|_, _| true), None);
    }

    #[test]
    fn match_at_every_ordinal_reports_zero() {
        for workers in [1, 3] {
            set_gamma_workers(workers);
            assert_eq!(min_matching_ordinal(100, &|_, _| true), Some(0));
        }
        set_gamma_workers(0);
    }

    #[test]
    fn worker_count_resolution_prefers_the_override() {
        set_gamma_workers(3);
        assert_eq!(gamma_workers(), 3);
        set_gamma_workers(0);
        assert!(gamma_workers() >= 1);
    }
}
