//! Mobile-robot gathering with Byzantine robots, in an asynchronous network.
//!
//! Section 3.2 of the paper motivates the a-priori value bounds `[ν, U]` with
//! mobile robots whose input vectors are positions in 3-dimensional space,
//! bounded by the operating region.  This example runs the asynchronous
//! Approximate BVC algorithm to make a fleet of robots agree (within ε) on a
//! rendezvous point that is guaranteed to lie inside the convex hull of the
//! honest robots' positions — so the meeting point is always within the area
//! the honest fleet actually spans, no matter what the Byzantine robots claim.
//!
//! d = 3 and f = 1 require n ≥ (d+2)f + 1 = 6 robots.
//!
//! Run with:
//!
//! ```text
//! cargo run --example robot_gathering
//! ```

use bvc::adversary::ByzantineStrategy;
use bvc::core::{BvcSession, ProtocolKind, RunConfig, UpdateRule};
use bvc::geometry::{Point, WorkloadGenerator};
use bvc::net::DeliveryPolicy;

fn main() {
    let side = 100.0; // operating region: [0, 100]^3 metres
    let epsilon = 0.5; // robots must agree on the rendezvous within 0.5 m

    // Five honest robots at reproducible pseudo-random positions.
    let mut workload = WorkloadGenerator::new(7);
    let honest_positions: Vec<Point> = workload.robot_positions(5, side).into_points();

    println!("Byzantine robot rendezvous (n = 6 robots, f = 1 Byzantine, d = 3)");
    println!("operating region [0, {side}]^3, epsilon = {epsilon} m");
    println!("honest robot positions:");
    for (i, p) in honest_positions.iter().enumerate() {
        println!("  robot {} at {p}", i + 1);
    }
    println!("robot 6 is Byzantine and pushes opposite corners of the region to different peers\n");

    let run = BvcSession::new(
        ProtocolKind::Approx,
        RunConfig::new(6, 1, 3)
            .honest_inputs(honest_positions.clone())
            .adversary(ByzantineStrategy::AntiConvergence)
            .epsilon(epsilon)
            .value_bounds(0.0, side)
            .update_rule(UpdateRule::WitnessOptimized)
            .delivery_policy(DeliveryPolicy::RandomFair)
            .seed(42),
    )
    .expect("parameters satisfy the (d+2)f+1 bound")
    .run();

    println!("rendezvous points decided by the honest robots:");
    for (i, decision) in run.decisions().iter().enumerate() {
        println!("  robot {} -> {decision}", i + 1);
    }
    let verdict = run.verdict();
    println!(
        "\nepsilon-agreement: {} (max spread {:.4} m)",
        verdict.agreement, verdict.max_pairwise_distance
    );
    println!("validity (inside the honest hull): {}", verdict.validity);
    println!(
        "round budget: {} rounds, messages delivered: {}",
        run.round_budget().expect("approx has a static budget"),
        run.stats().messages_delivered
    );
    println!("\nper-round spread of the honest fleet (first 10 rounds):");
    for (t, range) in run.range_history().iter().take(10).enumerate() {
        println!("  after round {t:>2}: {range:>8.3} m");
    }

    assert!(verdict.all_hold());
    println!(
        "\nThe fleet gathers within epsilon despite the Byzantine robot, as Theorem 5 promises."
    );
}
