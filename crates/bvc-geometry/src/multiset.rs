//! Multisets of points.
//!
//! The paper is careful to work with **multisets** rather than sets (Appendix
//! B): two processes may hold identical state, so the collection of inputs or
//! states of a subset of processes may contain repeated points.
//! [`PointMultiset`] preserves multiplicity and the positional identity of its
//! members, which is exactly the notion of "subset of a multiset" the paper
//! defines (a subset of the index set).

use crate::combinatorics::combinations;
use crate::point::Point;

/// A multiset of points in `R^d`, all with the same dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct PointMultiset {
    dim: usize,
    points: Vec<Point>,
}

impl PointMultiset {
    /// Creates a multiset from a list of points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or the points do not share a dimension.
    pub fn new(points: Vec<Point>) -> Self {
        assert!(!points.is_empty(), "a point multiset must be non-empty");
        let dim = points[0].dim();
        assert!(
            points.iter().all(|p| p.dim() == dim),
            "all points in a multiset must share a dimension"
        );
        Self { dim, points }
    }

    /// The common dimension of the points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The number of members, counting multiplicity (the paper's `|Y|`).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always `false`: the constructor rejects empty multisets.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Borrows the member points in index order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The member at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn point(&self, i: usize) -> &Point {
        &self.points[i]
    }

    /// Iterates over the member points.
    pub fn iter(&self) -> std::slice::Iter<'_, Point> {
        self.points.iter()
    }

    /// Consumes the multiset, returning its points.
    pub fn into_points(self) -> Vec<Point> {
        self.points
    }

    /// The sub-multiset picked out by `indices` (the paper's notion of a
    /// multiset subset via a subset of the index set `N_Y`).
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or any index is out of range.
    pub fn select(&self, indices: &[usize]) -> PointMultiset {
        assert!(!indices.is_empty(), "cannot select an empty sub-multiset");
        let points = indices
            .iter()
            .map(|&i| {
                assert!(i < self.points.len(), "index {i} out of range");
                self.points[i].clone()
            })
            .collect();
        PointMultiset::new(points)
    }

    /// All sub-multisets of size `k`, in lexicographic order of their index
    /// sets.  This enumerates the sets `T ⊆ Y, |T| = k` used by the safe-area
    /// operator `Γ` (equation (1) in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > self.len()`.
    pub fn subsets_of_size(&self, k: usize) -> Vec<PointMultiset> {
        assert!(k > 0 && k <= self.len(), "subset size {k} out of range");
        combinations(self.len(), k)
            .into_iter()
            .map(|idx| self.select(&idx))
            .collect()
    }

    /// Splits the multiset into the parts named by `index_partition`, which
    /// must be a partition of `0..len()` (the paper's multiset partition,
    /// Appendix B).
    ///
    /// # Panics
    ///
    /// Panics if the index lists do not form a partition of `0..len()` or any
    /// part is empty.
    pub fn partition(&self, index_partition: &[Vec<usize>]) -> Vec<PointMultiset> {
        let mut seen = vec![false; self.len()];
        for part in index_partition {
            assert!(!part.is_empty(), "partition parts must be non-empty");
            for &i in part {
                assert!(i < self.len(), "index {i} out of range");
                assert!(!seen[i], "index {i} appears in two parts");
                seen[i] = true;
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "partition must cover every index of the multiset"
        );
        index_partition
            .iter()
            .map(|part| self.select(part))
            .collect()
    }

    /// Per-coordinate minimum over the members: the vector `(µ_1, …, µ_d)`.
    pub fn coordinate_min(&self) -> Point {
        let mut coords = vec![f64::INFINITY; self.dim];
        for p in &self.points {
            for (c, v) in coords.iter_mut().zip(p.coords()) {
                *c = c.min(*v);
            }
        }
        Point::new(coords)
    }

    /// Per-coordinate maximum over the members: the vector `(Ω_1, …, Ω_d)`.
    pub fn coordinate_max(&self) -> Point {
        let mut coords = vec![f64::NEG_INFINITY; self.dim];
        for p in &self.points {
            for (c, v) in coords.iter_mut().zip(p.coords()) {
                *c = c.max(*v);
            }
        }
        Point::new(coords)
    }

    /// The largest per-coordinate range `max_l (Ω_l − µ_l)`: the paper's
    /// `max_l ρ_l[t]`, used to measure convergence of the approximate
    /// algorithms.
    pub fn coordinate_range(&self) -> f64 {
        let lo = self.coordinate_min();
        let hi = self.coordinate_max();
        lo.coords()
            .iter()
            .zip(hi.coords())
            .map(|(a, b)| b - a)
            .fold(0.0, f64::max)
    }
}

impl FromIterator<Point> for PointMultiset {
    fn from_iter<I: IntoIterator<Item = Point>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl IntoIterator for PointMultiset {
    type Item = Point;
    type IntoIter = std::vec::IntoIter<Point>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.into_iter()
    }
}

impl<'a> IntoIterator for &'a PointMultiset {
    type Item = &'a Point;
    type IntoIter = std::slice::Iter<'a, Point>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PointMultiset {
        PointMultiset::new(vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.0, 1.0]),
            Point::new(vec![1.0, 0.0]), // duplicate member: multiplicity matters
        ])
    }

    #[test]
    fn construction_preserves_multiplicity() {
        let ms = sample();
        assert_eq!(ms.len(), 4);
        assert_eq!(ms.dim(), 2);
        assert_eq!(ms.point(1), ms.point(3));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_multiset_panics() {
        let _ = PointMultiset::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "share a dimension")]
    fn mixed_dimensions_panic() {
        let _ = PointMultiset::new(vec![Point::new(vec![0.0]), Point::new(vec![0.0, 1.0])]);
    }

    #[test]
    fn select_preserves_order_and_duplicates() {
        let ms = sample();
        let sub = ms.select(&[3, 1]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.point(0), sub.point(1));
    }

    #[test]
    fn subsets_of_size_counts_match_binomial() {
        let ms = sample();
        assert_eq!(ms.subsets_of_size(2).len(), 6);
        assert_eq!(ms.subsets_of_size(4).len(), 1);
        assert_eq!(ms.subsets_of_size(1).len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_subset_panics() {
        let ms = sample();
        let _ = ms.subsets_of_size(5);
    }

    #[test]
    fn partition_into_parts() {
        let ms = sample();
        let parts = ms.partition(&[vec![0, 2], vec![1], vec![3]]);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 2);
        assert_eq!(parts[1].len(), 1);
    }

    #[test]
    #[should_panic(expected = "cover every index")]
    fn incomplete_partition_panics() {
        let ms = sample();
        let _ = ms.partition(&[vec![0], vec![1]]);
    }

    #[test]
    #[should_panic(expected = "two parts")]
    fn overlapping_partition_panics() {
        let ms = sample();
        let _ = ms.partition(&[vec![0, 1], vec![1, 2, 3]]);
    }

    #[test]
    fn coordinate_extrema_and_range() {
        let ms = sample();
        assert_eq!(ms.coordinate_min().coords(), &[0.0, 0.0]);
        assert_eq!(ms.coordinate_max().coords(), &[1.0, 1.0]);
        assert_eq!(ms.coordinate_range(), 1.0);
    }

    #[test]
    fn from_iterator_and_into_iterator() {
        let ms: PointMultiset = (0..3).map(|i| Point::new(vec![i as f64])).collect();
        assert_eq!(ms.len(), 3);
        let back: Vec<Point> = ms.clone().into_iter().collect();
        assert_eq!(back.len(), 3);
        let borrowed: Vec<&Point> = (&ms).into_iter().collect();
        assert_eq!(borrowed.len(), 3);
    }
}
