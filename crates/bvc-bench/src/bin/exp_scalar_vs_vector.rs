//! E8 — The Section 1 motivating example: scalar-per-dimension consensus
//! violates vector validity; Exact BVC does not.
//!
//! First reproduces the paper's exact counterexample (three honest probability
//! vectors; per-dimension consensus can output `[1/6, 1/6, 1/6]`, outside the
//! honest hull), then sweeps random probability-vector workloads and reports
//! the fraction of runs in which each algorithm's output leaves the convex
//! hull of the honest inputs.

use bvc_adversary::ByzantineStrategy;
use bvc_baselines::{per_dimension_decision, ScalarPick};
use bvc_bench::{experiment_header, fmt, mark, Table};
use bvc_core::{BvcSession, ProtocolKind, RunConfig};
use bvc_geometry::{ConvexHull, Point, PointMultiset, WorkloadGenerator};

fn main() {
    experiment_header(
        "E8: per-dimension scalar consensus vs Exact BVC",
        "running scalar consensus per coordinate can produce a vector outside the convex hull \
         of the honest inputs (the probability-vector example of Section 1); Exact BVC never does",
    );

    println!("### the paper's exact counterexample\n");
    let honest = vec![
        Point::new(vec![2.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0]),
        Point::new(vec![1.0 / 6.0, 2.0 / 3.0, 1.0 / 6.0]),
        Point::new(vec![1.0 / 6.0, 1.0 / 6.0, 2.0 / 3.0]),
    ];
    let hull = ConvexHull::new(PointMultiset::new(honest.clone()));
    let mut with_fault = honest.clone();
    with_fault.push(Point::origin(3));
    let scalar = per_dimension_decision(&PointMultiset::new(with_fault), 1, ScalarPick::Lower);
    let mut table = Table::new(&["decision rule", "decision", "Σ coords", "in honest hull"]);
    table.row(&[
        "scalar per dimension (lower pick)".into(),
        format!("{scalar}"),
        fmt(scalar.coords().iter().sum::<f64>(), 3),
        mark(hull.contains(&scalar)),
    ]);
    let run = BvcSession::new(
        ProtocolKind::Exact,
        RunConfig::new(5, 1, 3)
            .honest_inputs(vec![
                honest[0].clone(),
                honest[1].clone(),
                honest[2].clone(),
                Point::new(vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]),
            ])
            .adversary(ByzantineStrategy::FixedOutlier)
            .seed(1),
    )
    .expect("bound satisfied")
    .run();
    let bvc = run.decisions()[0].clone();
    table.row(&[
        "Exact BVC (Γ point)".into(),
        format!("{bvc}"),
        fmt(bvc.coords().iter().sum::<f64>(), 3),
        mark(run.verdict().validity),
    ]);
    table.print();

    println!("\n### random probability-vector workloads (d = 3, f = 1)\n");
    let trials = 50;
    let mut workload = WorkloadGenerator::new(2024);
    let mut scalar_violations = [0usize; 3];
    let mut bvc_violations = 0usize;
    for trial in 0..trials {
        let honest: Vec<Point> = workload.probability_vectors(4, 3).into_points();
        let hull = ConvexHull::new(PointMultiset::new(honest.clone()));
        let mut reported = honest.clone();
        reported.push(Point::origin(3));
        let reported = PointMultiset::new(reported);
        for (k, pick) in [ScalarPick::Lower, ScalarPick::Middle, ScalarPick::Upper]
            .into_iter()
            .enumerate()
        {
            let decision = per_dimension_decision(&reported, 1, pick);
            if !hull.contains(&decision) {
                scalar_violations[k] += 1;
            }
        }
        let run = BvcSession::new(
            ProtocolKind::Exact,
            RunConfig::new(5, 1, 3)
                .honest_inputs(honest)
                .adversary(ByzantineStrategy::FixedOutlier)
                .seed(trial as u64),
        )
        .expect("bound satisfied")
        .run();
        if !run.verdict().validity {
            bvc_violations += 1;
        }
    }
    let mut table = Table::new(&["decision rule", "validity violations", "trials"]);
    table.row(&[
        "scalar per dimension, lower pick".into(),
        scalar_violations[0].to_string(),
        trials.to_string(),
    ]);
    table.row(&[
        "scalar per dimension, middle pick".into(),
        scalar_violations[1].to_string(),
        trials.to_string(),
    ]);
    table.row(&[
        "scalar per dimension, upper pick".into(),
        scalar_violations[2].to_string(),
        trials.to_string(),
    ]);
    table.row(&[
        "Exact BVC".into(),
        bvc_violations.to_string(),
        trials.to_string(),
    ]);
    table.print();
    println!();
    println!(
        "Exact BVC never leaves the honest hull (its decision is a point of Γ(S)); the \
         per-dimension baseline leaves it in most trials, exactly the failure mode the paper \
         uses to motivate vector consensus."
    );
}
