//! Exact Byzantine vector consensus in synchronous systems (Section 2.2).
//!
//! The algorithm, verbatim from the paper, for
//! `n ≥ max(3f + 1, (d + 1)f + 1)`:
//!
//! 1. Every process uses a Byzantine broadcast algorithm to broadcast its
//!    input vector to all processes.  At the end of this step every non-faulty
//!    process holds an **identical** multiset `S` of `n` vectors in which the
//!    entry of every non-faulty process equals that process's input.
//! 2. Every process picks, with the same deterministic rule, a point of
//!    `Γ(S)` as its decision.  `Γ(S) ≠ ∅` by Lemma 1 because
//!    `|S| = n ≥ (d+1)f + 1`.
//!
//! [`ExactBvcProcess`] implements the honest protocol as a
//! [`SyncProcess`]; [`ByzantineExactProcess`] wraps it with a
//! [`PointForge`]-driven attack (equivocation during its own broadcast,
//! forged relays in other instances, silence, …).

use crate::config::BvcConfig;
use bvc_adversary::PointForge;
use bvc_broadcast::{BroadcastInstance, BroadcastMessage};
use bvc_geometry::relaxed::decision_point;
use bvc_geometry::{Point, PointMultiset, SharedGammaCache, ValidityPredicate};
use bvc_net::{broadcast_to_all, Delivery, Outgoing, ProcessId, SyncProcess};

/// Message exchanged by the Exact BVC protocol: a Byzantine-broadcast message
/// tagged with the instance (source) it belongs to.
#[derive(Debug, Clone, PartialEq)]
pub struct ExactMsg {
    /// Index of the process whose input this broadcast instance disseminates.
    pub source: usize,
    /// The underlying broadcast-protocol message.
    pub payload: BroadcastMessage<Point>,
}

impl ExactMsg {
    /// Replaces every point payload in this message by `point` (used by the
    /// Byzantine wrapper to forge values while keeping the message shape).
    pub fn forge_points(&mut self, point: &Point) {
        match &mut self.payload {
            BroadcastMessage::Initial(v) => *v = point.clone(),
            BroadcastMessage::Relay(pairs) => {
                for (_, v) in pairs.iter_mut() {
                    *v = point.clone();
                }
            }
        }
    }
}

/// Honest process of the Exact BVC algorithm.
pub struct ExactBvcProcess {
    config: BvcConfig,
    me: usize,
    instances: Vec<BroadcastInstance<Point>>,
    agreed_multiset: Option<PointMultiset>,
    decision: Option<Point>,
    gamma_cache: Option<SharedGammaCache>,
    validity: ValidityPredicate,
}

impl ExactBvcProcess {
    /// Creates the honest process with index `me` and input vector `input`.
    ///
    /// # Panics
    ///
    /// Panics if `me >= config.n`, `input.dim() != config.d`, or
    /// `config.f == 0` (with no faults the problem is a plain deterministic
    /// exchange; the runners handle that case separately).
    pub fn new(config: BvcConfig, me: usize, input: Point) -> Self {
        assert!(me < config.n, "process index {me} out of range");
        assert_eq!(input.dim(), config.d, "input dimension must equal config.d");
        assert!(config.f >= 1, "ExactBvcProcess requires f >= 1");
        let default = Point::uniform(config.d, config.lower_bound);
        let mut instances: Vec<BroadcastInstance<Point>> = (0..config.n)
            .map(|source| BroadcastInstance::new(config.n, config.f, me, source, default.clone()))
            .collect();
        instances[me].set_input(input);
        Self {
            config,
            me,
            instances,
            agreed_multiset: None,
            decision: None,
            gamma_cache: None,
            validity: ValidityPredicate::Strict,
        }
    }

    /// Selects the validity regime of the Step-2 decision rule.  `Strict`
    /// (the default) picks a point of `Γ(S)`.  Relaxed modes widen the rule
    /// exactly as the relaxed problem permits: `AlphaScaled(α)` picks a
    /// point of the `(1+α)`-dilated safe area (byte-identical to strict at
    /// `α = 0`), and `KRelaxed(k)` falls back to the per-coordinate
    /// trimmed-centre rule, verified against every `k`-dimensional
    /// projection, when `Γ(S)` itself is empty.  All honest processes hold
    /// the identical multiset `S` after Step 1, so every relaxed rule is
    /// still the "same deterministic function at every process" that exact
    /// agreement requires.
    pub fn with_validity_mode(mut self, mode: ValidityPredicate) -> Self {
        self.validity = mode;
        self
    }

    /// Shares a [`GammaCache`](bvc_geometry::GammaCache) with this process:
    /// since Step 1 leaves every non-faulty process with the *identical*
    /// multiset `S`, a shared cache computes the Step-2 decision point once
    /// per system instead of once per process.  Cached and uncached decisions
    /// are identical (the Γ point is a deterministic function of the
    /// multiset), so partially cached deployments stay safe.
    pub fn with_gamma_cache(mut self, cache: SharedGammaCache) -> Self {
        self.gamma_cache = Some(cache);
        self
    }

    /// Number of synchronous rounds until the decision is available:
    /// `f + 2` broadcast rounds plus one closing round.
    pub fn total_rounds(config: &BvcConfig) -> usize {
        config.f + 3
    }

    /// The identical multiset `S` obtained at the end of Step 1, once
    /// available.
    pub fn agreed_multiset(&self) -> Option<&PointMultiset> {
        self.agreed_multiset.as_ref()
    }

    fn broadcast_rounds(&self) -> usize {
        self.config.f + 2
    }

    fn deliver_inbox(&mut self, round: usize, inbox: &[Delivery<ExactMsg>]) {
        if round < 2 {
            return;
        }
        let broadcast_round = round - 1;
        if broadcast_round > self.broadcast_rounds() {
            return;
        }
        for delivery in inbox {
            let source = delivery.msg.source;
            if source < self.instances.len() {
                self.instances[source].receive(
                    broadcast_round,
                    delivery.from.index(),
                    &delivery.msg.payload,
                );
            }
        }
        for instance in self.instances.iter_mut() {
            instance.end_round(broadcast_round);
        }
        if broadcast_round == self.broadcast_rounds() {
            self.conclude();
        }
    }

    fn conclude(&mut self) {
        let points: Vec<Point> = self
            .instances
            .iter()
            .map(|inst| {
                inst.decision()
                    .cloned()
                    .unwrap_or_else(|| Point::uniform(self.config.d, self.config.lower_bound))
            })
            .collect();
        let multiset = PointMultiset::new(points);
        self.decision = self.decide(&multiset);
        self.agreed_multiset = Some(multiset);
    }

    /// The Step-2 decision rule under the configured validity regime
    /// ([`decision_point`]): all honest processes hold the identical
    /// multiset, so the shared cache computes the (possibly relaxed)
    /// safe-area value once system-wide.
    fn decide(&self, multiset: &PointMultiset) -> Option<Point> {
        match &self.gamma_cache {
            Some(cache) => cache.decision_point(multiset, self.config.f, &self.validity),
            None => decision_point(multiset, self.config.f, &self.validity),
        }
    }

    fn outgoing_for_round(&mut self, round: usize) -> Vec<Outgoing<ExactMsg>> {
        if round > self.broadcast_rounds() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for source in 0..self.config.n {
            if let Some(payload) = self.instances[source].message_for_round(round) {
                let msg = ExactMsg { source, payload };
                out.extend(broadcast_to_all(
                    self.config.n,
                    Some(ProcessId::new(self.me)),
                    &msg,
                ));
            }
        }
        out
    }
}

impl SyncProcess for ExactBvcProcess {
    type Msg = ExactMsg;
    type Output = Point;

    fn round(&mut self, round: usize, inbox: &[Delivery<ExactMsg>]) -> Vec<Outgoing<ExactMsg>> {
        self.deliver_inbox(round, inbox);
        self.outgoing_for_round(round)
    }

    fn output(&self) -> Option<Point> {
        self.decision.clone()
    }

    // Exact consensus has no converging round state; the decision appears in
    // the closing round, so the traced spread collapses exactly there.
    fn trace_state(&self) -> Option<Vec<f64>> {
        self.decision.as_ref().map(|p| p.coords().to_vec())
    }
}

/// A Byzantine participant of the Exact BVC protocol: runs the honest message
/// schedule internally and forges every point it sends according to a
/// [`PointForge`] strategy (per-receiver, so equivocation is expressible), or
/// stays silent when the strategy says so.
pub struct ByzantineExactProcess {
    inner: ExactBvcProcess,
    forge: PointForge,
}

impl ByzantineExactProcess {
    /// Creates a Byzantine process with the given forge.  The inner honest
    /// skeleton uses the forge's strategy-independent "honest" value as its
    /// nominal input so the message schedule stays well-formed.
    pub fn new(config: BvcConfig, me: usize, nominal_input: Point, forge: PointForge) -> Self {
        Self {
            inner: ExactBvcProcess::new(config, me, nominal_input),
            forge,
        }
    }

    /// Shares a Γ cache with the inner honest skeleton (its Step-2 work is
    /// pure overhead for an adversary, so sharing makes it nearly free).
    pub fn with_gamma_cache(mut self, cache: SharedGammaCache) -> Self {
        self.inner = self.inner.with_gamma_cache(cache);
        self
    }
}

impl SyncProcess for ByzantineExactProcess {
    type Msg = ExactMsg;
    type Output = Point;

    fn round(&mut self, round: usize, inbox: &[Delivery<ExactMsg>]) -> Vec<Outgoing<ExactMsg>> {
        let honest = self.inner.round(round, inbox);
        let mut forged = Vec::with_capacity(honest.len());
        for mut outgoing in honest {
            match self.forge.forge(round, outgoing.to.index()) {
                Some(point) => {
                    outgoing.msg.forge_points(&point);
                    forged.push(outgoing);
                }
                None => {
                    // Strategy says: send nothing to this receiver this round.
                }
            }
        }
        forged
    }

    fn output(&self) -> Option<Point> {
        // A Byzantine process's output is irrelevant to the problem statement.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvc_adversary::ByzantineStrategy;
    use bvc_net::SyncNetwork;

    fn config(n: usize, f: usize, d: usize) -> BvcConfig {
        BvcConfig::new(n, f, d).unwrap()
    }

    /// Builds a network of `n` processes where the last `f` are Byzantine with
    /// the given strategy, runs it, and returns (honest decisions, honest
    /// inputs).
    fn run_exact(
        n: usize,
        f: usize,
        d: usize,
        honest_inputs: Vec<Point>,
        strategy: ByzantineStrategy,
        seed: u64,
    ) -> (Vec<Point>, Vec<Point>) {
        assert_eq!(honest_inputs.len(), n - f);
        let cfg = config(n, f, d);
        let mut processes: Vec<Box<dyn SyncProcess<Msg = ExactMsg, Output = Point>>> = Vec::new();
        for (i, input) in honest_inputs.iter().enumerate() {
            processes.push(Box::new(ExactBvcProcess::new(
                cfg.clone(),
                i,
                input.clone(),
            )));
        }
        for b in 0..f {
            let me = n - f + b;
            let mut forge = PointForge::new(
                strategy,
                d,
                cfg.lower_bound,
                cfg.upper_bound,
                seed + b as u64,
            );
            forge.set_honest_value(Point::uniform(d, cfg.upper_bound));
            processes.push(Box::new(ByzantineExactProcess::new(
                cfg.clone(),
                me,
                Point::uniform(d, cfg.lower_bound),
                forge,
            )));
        }
        let honest_indices: Vec<usize> = (0..n - f).collect();
        let outcome =
            SyncNetwork::new(processes, ExactBvcProcess::total_rounds(&cfg)).run(&honest_indices);
        let decisions: Vec<Point> = honest_indices
            .iter()
            .map(|&i| {
                outcome.outputs[i]
                    .clone()
                    .expect("honest process must decide")
            })
            .collect();
        (decisions, honest_inputs)
    }

    fn assert_agreement(decisions: &[Point]) {
        for pair in decisions.windows(2) {
            assert!(
                pair[0].approx_eq(&pair[1], 1e-7),
                "agreement violated: {} vs {}",
                pair[0],
                pair[1]
            );
        }
    }

    use crate::validity::assert_strict_validity as assert_validity;

    #[test]
    fn fault_free_skeleton_agrees_on_input_multiset() {
        // n = 4, f = 1 but the "Byzantine" process is benign: everyone honest
        // in effect. d = 1.
        let inputs = vec![
            Point::new(vec![0.1]),
            Point::new(vec![0.5]),
            Point::new(vec![0.9]),
        ];
        let (decisions, honest) = run_exact(4, 1, 1, inputs, ByzantineStrategy::Benign, 1);
        assert_agreement(&decisions);
        assert_validity(&decisions, &honest);
    }

    #[test]
    fn outlier_attack_cannot_break_validity_d2() {
        // d = 2, f = 1, n = max(4, 4) = 4 ... but (d+1)f+1 = 4, 3f+1 = 4.
        let inputs = vec![
            Point::new(vec![0.2, 0.2]),
            Point::new(vec![0.8, 0.3]),
            Point::new(vec![0.5, 0.9]),
        ];
        let (decisions, honest) = run_exact(4, 1, 2, inputs, ByzantineStrategy::FixedOutlier, 2);
        assert_agreement(&decisions);
        assert_validity(&decisions, &honest);
    }

    #[test]
    fn equivocation_attack_cannot_break_agreement_d2() {
        let inputs = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.0, 1.0]),
        ];
        let (decisions, honest) = run_exact(4, 1, 2, inputs, ByzantineStrategy::Equivocate, 3);
        assert_agreement(&decisions);
        assert_validity(&decisions, &honest);
    }

    #[test]
    fn silent_byzantine_process_does_not_block_termination() {
        let inputs = vec![
            Point::new(vec![0.25, 0.75]),
            Point::new(vec![0.5, 0.5]),
            Point::new(vec![0.75, 0.25]),
        ];
        let (decisions, honest) = run_exact(4, 1, 2, inputs, ByzantineStrategy::Silent, 4);
        assert_agreement(&decisions);
        assert_validity(&decisions, &honest);
    }

    #[test]
    fn probability_vector_inputs_stay_probability_vectors() {
        // The paper's motivating example: if every honest input is a
        // probability vector, the decision must be one too (it lies in their
        // convex hull). d = 3, f = 1, n = max(4, 5) = 5.
        let inputs = vec![
            Point::new(vec![2.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0]),
            Point::new(vec![1.0 / 6.0, 2.0 / 3.0, 1.0 / 6.0]),
            Point::new(vec![1.0 / 6.0, 1.0 / 6.0, 2.0 / 3.0]),
            Point::new(vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]),
        ];
        let (decisions, honest) = run_exact(5, 1, 3, inputs, ByzantineStrategy::AntiConvergence, 5);
        assert_agreement(&decisions);
        assert_validity(&decisions, &honest);
        let d = &decisions[0];
        let sum: f64 = d.coords().iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-5,
            "decision must remain a probability vector"
        );
        assert!(d.coords().iter().all(|&c| c >= -1e-6));
    }

    #[test]
    fn two_faults_seven_processes_d2() {
        let inputs = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.0, 1.0]),
            Point::new(vec![1.0, 1.0]),
            Point::new(vec![0.5, 0.5]),
        ];
        let (decisions, honest) = run_exact(7, 2, 2, inputs, ByzantineStrategy::RandomNoise, 6);
        assert_agreement(&decisions);
        assert_validity(&decisions, &honest);
    }

    #[test]
    fn extra_processes_beyond_the_bound_still_work() {
        // n = 6 > 4 required for d = 2, f = 1.
        let inputs = vec![
            Point::new(vec![0.1, 0.1]),
            Point::new(vec![0.9, 0.1]),
            Point::new(vec![0.5, 0.9]),
            Point::new(vec![0.4, 0.4]),
            Point::new(vec![0.6, 0.6]),
        ];
        let (decisions, honest) = run_exact(6, 1, 2, inputs, ByzantineStrategy::Equivocate, 7);
        assert_agreement(&decisions);
        assert_validity(&decisions, &honest);
    }

    #[test]
    fn forge_points_rewrites_payloads() {
        let mut msg = ExactMsg {
            source: 0,
            payload: BroadcastMessage::Relay(vec![
                (vec![], Point::new(vec![1.0, 2.0])),
                (vec![1], Point::new(vec![3.0, 4.0])),
            ]),
        };
        msg.forge_points(&Point::new(vec![9.0, 9.0]));
        if let BroadcastMessage::Relay(pairs) = &msg.payload {
            assert!(pairs.iter().all(|(_, v)| v.coords() == [9.0, 9.0]));
        } else {
            panic!("payload kind changed");
        }
    }

    #[test]
    #[should_panic(expected = "requires f >= 1")]
    fn zero_faults_rejected_by_process() {
        let cfg = config(3, 0, 2);
        let _ = ExactBvcProcess::new(cfg, 0, Point::new(vec![0.0, 0.0]));
    }
}
