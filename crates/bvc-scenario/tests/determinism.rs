//! Determinism and fairness properties of the scenario engine, pinned over
//! the real `scenarios/` catalogue:
//!
//! * same scenario file + same seed ⇒ **byte-identical** JSON verdict;
//! * finite-duration drop/partition faults never permanently starve a
//!   channel — the protocol still terminates once the plan goes quiescent.

use bvc_scenario::{expand, run_scenario, ScenarioSpec};
use std::path::PathBuf;

fn scenario_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn catalogue() -> Vec<(String, ScenarioSpec)> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(scenario_dir())
        .expect("scenarios/ directory exists at the workspace root")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 6,
        "the catalogue ships at least six exemplar scenarios, found {}",
        paths.len()
    );
    paths
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("scenario file readable");
            let spec = ScenarioSpec::from_toml(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            (name, spec)
        })
        .collect()
}

/// Same file + same seed ⇒ byte-identical JSON, for every shipped scenario.
#[test]
fn every_catalogue_scenario_is_byte_deterministic() {
    for (name, spec) in catalogue() {
        let first = run_scenario(&spec, spec.seed, spec.strategy, spec.policy.clone())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let second = run_scenario(&spec, spec.seed, spec.strategy, spec.policy.clone())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            first.to_json(),
            second.to_json(),
            "{name}: JSON verdicts must be byte-identical for equal seeds"
        );
    }
}

/// Different seeds must actually change seeded executions (the engine is not
/// accidentally ignoring the seed).
#[test]
fn seeds_are_threaded_through_to_the_execution() {
    let (_, spec) = catalogue()
        .into_iter()
        .find(|(name, _)| name == "partition_heal.toml")
        .expect("partition_heal.toml ships with the repo");
    let a = run_scenario(&spec, 1, spec.strategy, spec.policy.clone()).unwrap();
    let b = run_scenario(&spec, 2, spec.strategy, spec.policy.clone()).unwrap();
    assert_ne!(a.to_json(), b.to_json());
}

/// The catalogue covers all seven protocols and all three fault kinds.
#[test]
fn catalogue_covers_protocols_and_fault_kinds() {
    let specs = catalogue();
    let protocols: std::collections::BTreeSet<&'static str> =
        specs.iter().map(|(_, s)| s.protocol.name()).collect();
    assert_eq!(
        protocols.into_iter().collect::<Vec<_>>(),
        vec![
            "approx",
            "directed-exact",
            "directed-exact-lb",
            "exact",
            "iterative",
            "restricted-async",
            "restricted-sync"
        ]
    );
    let fault_kinds: std::collections::BTreeSet<&'static str> = specs
        .iter()
        .flat_map(|(_, s)| s.faults.events().iter().map(|e| e.kind.name()))
        .collect();
    assert_eq!(
        fault_kinds.into_iter().collect::<Vec<_>>(),
        vec!["drop", "latency", "partition"]
    );
}

/// Fairness regression at the scenario level: a partition plus a lossy window,
/// both finite, delay but never starve — the asynchronous protocol still
/// terminates with its guarantees intact once the plan goes quiescent.
#[test]
fn finite_faults_never_starve_a_scenario() {
    let spec = ScenarioSpec::from_toml(
        r#"
[scenario]
name = "fairness-regression"
protocol = "approx"
n = 5
f = 1
d = 2
epsilon = 0.1
max_steps = 1000000

[inputs]
generator = "corners"

[adversary]
strategy = "anti-convergence"

[[faults]]
kind = "partition"
groups = [[0], [1, 2]]
start = 0
duration = 250

[[faults]]
kind = "drop"
rate = 0.5
from = [4]
start = 0
duration = 50
"#,
    )
    .unwrap();
    let outcome = run_scenario(&spec, 7, spec.strategy, spec.policy.clone()).unwrap();
    assert!(
        outcome.verdict.termination,
        "finite faults must not starve termination: {:?}",
        outcome.verdict
    );
    assert!(outcome.verdict.agreement && outcome.verdict.validity);
    // Every honest process both sent and received messages — no starved
    // channel endpoints.
    for counters in &outcome.stats.per_process[..4] {
        assert!(counters.sent > 0 && counters.delivered > 0);
    }
}

/// The campaign expansion of the shipped sweep is exactly 100 instances.
#[test]
fn shipped_sweep_expands_to_one_hundred_instances() {
    let (_, spec) = catalogue()
        .into_iter()
        .find(|(name, _)| name == "sweep_100.toml")
        .expect("sweep_100.toml ships with the repo");
    assert_eq!(expand(0, &spec).len(), 100);
}
