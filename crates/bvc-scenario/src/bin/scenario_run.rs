//! `scenario-run` — run one declarative scenario and print its JSON verdict.
//!
//! ```text
//! cargo run -p bvc-scenario --bin scenario-run -- \
//!     --scenario scenarios/partition_heal.toml [--seed 42] [--strategy equivocate] \
//!     [--trace trace.jsonl]
//! ```
//!
//! The verdict goes to stdout as a single JSON line; identical scenario and
//! seed produce byte-identical output.  `--trace` additionally writes the
//! run's deterministic `bvc-trace/v1` event stream to the given path — the
//! verdict line is byte-identical with and without it.  Exit code 0 means
//! the instance ran (a violated verdict is data, not an error); 2 means it
//! could not run.

use bvc_scenario::{parse_strategy, run_scenario, ScenarioSpec};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: scenario-run --scenario <file.toml> [--seed <u64>] [--strategy <name>] \
         [--trace <file.jsonl>]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut scenario_path: Option<String> = None;
    let mut seed_override: Option<u64> = None;
    let mut strategy_override: Option<String> = None;
    let mut trace_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => scenario_path = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => trace_path = Some(args.next().unwrap_or_else(|| usage())),
            "--seed" => {
                let value = args.next().unwrap_or_else(|| usage());
                match value.parse() {
                    Ok(seed) => seed_override = Some(seed),
                    Err(_) => {
                        eprintln!("scenario-run: invalid --seed `{value}`");
                        return ExitCode::from(2);
                    }
                }
            }
            "--strategy" => strategy_override = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("scenario-run: unknown argument `{other}`");
                usage();
            }
        }
    }
    let Some(path) = scenario_path else { usage() };

    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("scenario-run: cannot read `{path}`: {e}");
            return ExitCode::from(2);
        }
    };
    let spec = match ScenarioSpec::from_toml(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("scenario-run: `{path}`: {e}");
            return ExitCode::from(2);
        }
    };
    let seed = seed_override.unwrap_or(spec.seed);
    let strategy = match &strategy_override {
        Some(name) => match parse_strategy(name) {
            Ok(strategy) => strategy,
            Err(e) => {
                eprintln!("scenario-run: {e}");
                return ExitCode::from(2);
            }
        },
        None => spec.strategy,
    };

    let result = bvc_trace::run_traced(trace_path.as_deref().map(Path::new), || {
        run_scenario(&spec, seed, strategy, spec.policy.clone())
    });
    match result {
        Ok(Ok(outcome)) => {
            println!("{}", outcome.to_json());
            ExitCode::SUCCESS
        }
        Ok(Err(e)) => {
            eprintln!("scenario-run: `{path}`: {e}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!(
                "scenario-run: cannot write trace `{}`: {e}",
                trace_path.as_deref().unwrap_or("")
            );
            ExitCode::from(2)
        }
    }
}
