//! Pins for the directed-graph subsystem (PR 10).
//!
//! * **K_n byte-identity** — on a declared complete topology the directed
//!   protocols delegate to the Section-2.2 complete-graph protocol, so
//!   their verdict JSON must match `exact` byte for byte apart from the
//!   protocol name (both delivery models: local broadcast is vacuous on
//!   `K_n`, where every receiver set is all of Π).
//! * **Divergence** — the committed `scenarios/directed_divergence.toml`
//!   family must be flagged condition-violated under point-to-point
//!   delivery and actually decide under local broadcast, in every swept
//!   cell.
//! * **Determinism** — same seed ⇒ byte-identical verdicts on seeded
//!   random digraphs; different seeds actually reach the execution.

use bvc_scenario::{expand, run_scenario, run_scenario_instance, ScenarioSpec};
use std::path::PathBuf;

fn scenario_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(file)
}

fn kn_spec(protocol: &str) -> ScenarioSpec {
    let text = format!(
        "[scenario]\nname = \"kn-pin\"\nprotocol = \"{protocol}\"\nn = 8\nf = 1\nd = 2\nseed = 7\n\
         [inputs]\ngenerator = \"grid\"\n\
         [adversary]\nstrategy = \"equivocate\"\n\
         [topology]\nkind = \"complete\"\n"
    );
    ScenarioSpec::from_toml(&text).unwrap()
}

fn verdict_json(spec: &ScenarioSpec) -> String {
    run_scenario(spec, spec.seed, spec.strategy, spec.policy.clone())
        .unwrap()
        .to_json()
}

#[test]
fn directed_protocols_on_complete_topology_match_exact_byte_for_byte() {
    let exact = verdict_json(&kn_spec("exact"));
    assert!(exact.contains("\"sufficiency\": \"satisfied\""));
    for protocol in ["directed-exact", "directed-exact-lb"] {
        let directed = verdict_json(&kn_spec(protocol));
        let normalized = directed.replace(
            &format!("\"protocol\": \"{protocol}\""),
            "\"protocol\": \"exact\"",
        );
        assert_eq!(
            normalized, exact,
            "{protocol} on K_8 must reproduce the exact verdict byte-for-byte \
             apart from the protocol name"
        );
    }
}

#[test]
fn divergence_campaign_separates_the_delivery_models() {
    let text = std::fs::read_to_string(scenario_path("directed_divergence.toml")).unwrap();
    let spec = ScenarioSpec::from_toml(&text).unwrap();
    let instances = expand(0, &spec);
    assert_eq!(instances.len(), 4, "2 seeds × 2 broadcast models");
    for instance in &instances {
        let outcome = run_scenario_instance(
            &instance.spec,
            instance.seed,
            instance.strategy,
            instance.policy.clone(),
            instance.topology.as_ref(),
            instance.validity.as_ref(),
        )
        .unwrap();
        let meta = outcome.topology.as_ref().expect("topology metadata");
        match instance.spec.protocol.name() {
            "directed-exact" => {
                assert_eq!(meta.sufficiency, "violated");
                assert!(
                    !meta.expected_solvable,
                    "point-to-point cells are flagged up front"
                );
            }
            "directed-exact-lb" => {
                assert_eq!(meta.sufficiency, "satisfied");
                assert!(meta.expected_solvable);
                assert!(
                    outcome.verdict.all_hold(),
                    "local-broadcast cells must decide (seed {}): {:?}",
                    instance.seed,
                    outcome.verdict
                );
            }
            other => panic!("unexpected protocol {other} in the expansion"),
        }
    }
}

#[test]
fn directed_runs_are_byte_deterministic_on_random_digraphs() {
    let text =
        "[scenario]\nname = \"det\"\nprotocol = \"directed-exact-lb\"\nn = 9\nf = 1\nd = 2\n\
         seed = 3\n\
         [inputs]\ngenerator = \"simplex\"\n\
         [adversary]\nstrategy = \"crash:2\"\n\
         [topology]\nkind = \"random-regular\"\ndegree = 4\n";
    let spec = ScenarioSpec::from_toml(text).unwrap();
    let a = run_scenario(&spec, 3, spec.strategy, spec.policy.clone()).unwrap();
    let b = run_scenario(&spec, 3, spec.strategy, spec.policy.clone()).unwrap();
    assert_eq!(a.to_json(), b.to_json(), "same seed ⇒ byte-identical");
    let c = run_scenario(&spec, 4, spec.strategy, spec.policy.clone()).unwrap();
    assert_ne!(
        a.to_json(),
        c.to_json(),
        "the seed reaches the inputs and the topology draw"
    );
}
