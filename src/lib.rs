//! # bvc — Byzantine Vector Consensus in Complete Graphs
//!
//! A Rust reproduction of *"Byzantine Vector Consensus in Complete Graphs"*
//! by Nitin H. Vaidya and Vijay K. Garg (PODC 2013, arXiv:1302.2543).
//!
//! This facade crate re-exports the public API of the workspace crates so that
//! downstream users (and the examples and integration tests in this
//! repository) can depend on a single crate:
//!
//! * [`geometry`] — d-dimensional convex geometry: points, convex-hull
//!   membership, the safe area `Γ(Y)`, Tverberg partitions.
//! * [`lp`] — the two-phase simplex solver backing the geometric predicates.
//! * [`net`] — the simulated message-passing substrate (complete graph,
//!   reliable FIFO channels, synchronous and asynchronous executors).
//! * [`broadcast`] — Byzantine broadcast (EIG) and asynchronous reliable
//!   broadcast.
//! * [`adversary`] — Byzantine fault strategies used to stress the protocols.
//! * [`core`] — the paper's algorithms: Exact BVC (synchronous), Approximate
//!   BVC (asynchronous, AAD-style exchange), restricted-round variants, the
//!   impossibility constructions and the convergence bounds.
//! * [`baselines`] — per-dimension scalar consensus and iterative scalar
//!   approximate agreement, used as baselines in the experiments.
//! * [`scenario`] — the declarative scenario engine: TOML-described runs with
//!   fault injection (drops, latency, partitions), topology sweeps and a
//!   parallel campaign runner emitting JSON verdicts.
//! * [`service`] — the multi-shot consensus service: batched admission of
//!   instance streams into a work-stealing pool, a shared cross-instance
//!   Γ cache, streaming verdict sinks and decisions/sec statistics.
//! * [`topology`] — directed communication topologies (complete / ring /
//!   torus / random-regular / explicit) with the graph conditions of
//!   iterative BVC in incomplete graphs.
//!
//! # Quickstart
//!
//! ```
//! use bvc::core::{BvcSession, ByzantineStrategy, ProtocolKind, RunConfig};
//! use bvc::geometry::Point;
//!
//! // 7 processes, 1 Byzantine fault, 3-dimensional inputs:
//! // n >= max(3f+1, (d+1)f+1) = 5 is required; we use 7 for slack.
//! let inputs = vec![
//!     Point::new(vec![1.0, 0.0, 0.0]),
//!     Point::new(vec![0.0, 1.0, 0.0]),
//!     Point::new(vec![0.0, 0.0, 1.0]),
//!     Point::new(vec![0.25, 0.25, 0.5]),
//!     Point::new(vec![0.5, 0.25, 0.25]),
//!     Point::new(vec![0.2, 0.2, 0.6]),
//! ];
//! let config = RunConfig::new(7, 1, 3)
//!     .honest_inputs(inputs)
//!     .adversary(ByzantineStrategy::FixedOutlier)
//!     .seed(42);
//! let report = BvcSession::new(ProtocolKind::Exact, config)
//!     .expect("parameters satisfy the resilience bound")
//!     .run();
//! assert!(report.verdict().agreement);
//! assert!(report.verdict().validity);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bvc_adversary as adversary;
pub use bvc_baselines as baselines;
pub use bvc_broadcast as broadcast;
pub use bvc_core as core;
pub use bvc_geometry as geometry;
pub use bvc_lp as lp;
pub use bvc_net as net;
pub use bvc_scenario as scenario;
pub use bvc_service as service;
pub use bvc_topology as topology;
pub use bvc_trace as trace;
