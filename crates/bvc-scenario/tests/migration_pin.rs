//! Byte-identical migration pin for the `BvcSession` redesign.
//!
//! Before the five per-protocol run builders were unified behind the session
//! API, the entire `scenarios/` catalogue was executed and its verdict JSON
//! committed under `tests/corpus/`:
//!
//! * `catalogue_single.jsonl` — one line per scenario file at its base
//!   `(seed, strategy, policy)`, in sorted-filename order (what this test
//!   replays: a debug run of every line stays cheap);
//! * `campaign_verdicts.jsonl` — the full campaign expansion (the original
//!   178 instances plus every scenario committed since: seeds × strategies
//!   × policies × topologies × validity × broadcast axes), which CI
//!   regenerates in release mode and byte-diffs against the commit.
//!
//! Any behavioural drift in the session layer — config assembly, dispatch,
//! verdict scoring, metadata emission — shows up here as a byte diff, the
//! same pin pattern that protected the topology (PR 3) and relaxed-validity
//! (PR 4) migrations.

use bvc_scenario::{expand, run_scenario, run_scenario_instance, ScenarioSpec};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The catalogue in sorted-filename order (the corpus line order).
fn catalogue() -> Vec<(String, ScenarioSpec)> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(workspace_root().join("scenarios"))
        .expect("scenarios/ directory exists at the workspace root")
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    paths.sort();
    paths
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("scenario file readable");
            let spec = ScenarioSpec::from_toml(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            (name, spec)
        })
        .collect()
}

fn corpus_lines(file: &str) -> Vec<String> {
    let path = workspace_root()
        .join("crates/bvc-scenario/tests/corpus")
        .join(file);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
        .lines()
        .map(str::to_owned)
        .collect()
}

/// Every catalogue scenario, run through the session dispatch at its base
/// instance, reproduces the pre-migration verdict byte for byte.
#[test]
fn catalogue_verdicts_match_the_pre_session_corpus() {
    let corpus = corpus_lines("catalogue_single.jsonl");
    let catalogue = catalogue();
    assert_eq!(
        corpus.len(),
        catalogue.len(),
        "one corpus line per catalogue scenario — regenerate the corpus when \
         adding a scenario (see the module docs)"
    );
    for ((name, spec), expected) in catalogue.into_iter().zip(corpus) {
        let fresh = run_scenario(&spec, spec.seed, spec.strategy, spec.policy.clone())
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .to_json();
        assert_eq!(
            fresh, expected,
            "{name}: the session dispatch must reproduce the pre-migration \
             verdict byte-for-byte"
        );
    }
}

/// The campaign corpus (what CI byte-diffs in full, in release mode) is
/// spot-checked here across the swept axes: the first and last expanded
/// instance of every scenario — which exercises topology and validity
/// overrides through `run_scenario_instance` — matches its corpus line.
#[test]
fn campaign_axis_cells_match_the_pre_session_corpus() {
    let corpus = corpus_lines("campaign_verdicts.jsonl");
    let mut offset = 0usize;
    for (scenario_index, (name, spec)) in catalogue().into_iter().enumerate() {
        let instances = expand(scenario_index, &spec);
        // Heavy cells (the f = 2 sweep) stay in the release-mode CI diff;
        // in-test we replay the cheap boundary cells of every scenario.
        for index in [0, instances.len() - 1] {
            let instance = &instances[index];
            if spec.n >= 9 {
                continue;
            }
            let fresh = run_scenario_instance(
                &instance.spec,
                instance.seed,
                instance.strategy,
                instance.policy.clone(),
                instance.topology.as_ref(),
                instance.validity.as_ref(),
            )
            .unwrap_or_else(|e| panic!("{name}[{index}]: {e}"))
            .to_json();
            assert_eq!(
                fresh,
                corpus[offset + index],
                "{name}[{index}]: campaign cell must match the pre-migration corpus"
            );
        }
        offset += instances.len();
    }
    assert_eq!(offset, corpus.len(), "corpus covers the whole expansion");
}
