//! The [`Tracer`] trait, its two built-in implementations, and the
//! cheap-clone [`TraceHandle`] that threads a tracer through scopes.
//!
//! Determinism: [`JsonlTracer`] buffers events tagged with their logical
//! position `(slot, seq)` and sorts by that key at [`finish`]
//! (stable, so events of one slot keep emission order).  Single-threaded
//! executions emit everything under one slot, so emission order is
//! preserved; the threaded executor registers one slot per process thread,
//! canonicalising whatever physical interleaving occurred into per-process
//! streams.
//!
//! [`finish`]: TraceHandle::finish

use crate::event::{TraceEvent, SCHEMA};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Receives typed trace events from the scopes a [`TraceHandle`] is
/// installed on.
pub trait Tracer: Send {
    /// Records one event at logical position `(slot, seq)`.
    fn record(&mut self, slot: u32, seq: u64, event: &TraceEvent);

    /// Consumes the buffered stream: returns serialized JSONL lines in the
    /// canonical `(slot, seq)` order.  Tracers that do not buffer (the
    /// no-op) return an empty vector.
    fn take_lines(&mut self) -> Vec<String> {
        Vec::new()
    }
}

/// Discards every event.  Useful to measure tracing overhead and as the
/// explicit "off" tracer; when no scope is installed at all, `emit` never
/// constructs the event in the first place.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn record(&mut self, _slot: u32, _seq: u64, _event: &TraceEvent) {}
}

/// Buffers events and serializes them to `bvc-trace/v1` JSON lines.
///
/// Events are serialized eagerly (the event is borrowed, not cloned) and
/// sorted by `(slot, seq)` when the lines are taken.
#[derive(Debug, Default)]
pub struct JsonlTracer {
    lines: Vec<(u32, u64, String)>,
}

impl JsonlTracer {
    /// An empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events buffered so far.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

impl Tracer for JsonlTracer {
    fn record(&mut self, slot: u32, seq: u64, event: &TraceEvent) {
        self.lines.push((slot, seq, event.to_json(slot, seq)));
    }

    fn take_lines(&mut self) -> Vec<String> {
        let mut taken = std::mem::take(&mut self.lines);
        taken.sort_by_key(|&(slot, seq, _)| (slot, seq));
        taken.into_iter().map(|(_, _, line)| line).collect()
    }
}

/// One wall-time measurement on the optional timing channel.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingEntry {
    /// What was measured (span label, phase name).
    pub label: String,
    /// Wall-clock delta in microseconds.
    pub micros: u128,
}

impl TimingEntry {
    /// Serializes the entry as one timing-channel JSON line.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"label\": \"{}\", \"us\": {}}}",
            crate::event::escape_json(&self.label),
            self.micros
        )
    }
}

struct HandleInner {
    tracer: Mutex<Box<dyn Tracer>>,
    timing: Option<Mutex<Vec<TimingEntry>>>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Buffered lines are plain data; poisoning is ignorable.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A cheap-clone handle to a shared [`Tracer`], installable on any number
/// of thread scopes (see [`crate::scope::install`]).
#[derive(Clone)]
pub struct TraceHandle {
    inner: Arc<HandleInner>,
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("timing", &self.inner.timing.is_some())
            .finish()
    }
}

impl TraceHandle {
    /// Wraps a tracer.  `with_timing` opens the optional wall-time channel;
    /// without it, [`record_timing`](Self::record_timing) is a no-op.
    pub fn new(tracer: Box<dyn Tracer>, with_timing: bool) -> Self {
        Self {
            inner: Arc::new(HandleInner {
                tracer: Mutex::new(tracer),
                timing: with_timing.then(|| Mutex::new(Vec::new())),
            }),
        }
    }

    /// A buffered JSONL tracer without a timing channel — the common case.
    pub fn jsonl() -> Self {
        Self::new(Box::new(JsonlTracer::new()), false)
    }

    /// A buffered JSONL tracer with the wall-time channel open.
    pub fn jsonl_with_timing() -> Self {
        Self::new(Box::new(JsonlTracer::new()), true)
    }

    pub(crate) fn record(&self, slot: u32, seq: u64, event: &TraceEvent) {
        lock(&self.inner.tracer).record(slot, seq, event);
    }

    /// Records one wall-time measurement on the timing channel, if open.
    /// Timing entries never enter the deterministic event stream.
    pub fn record_timing(&self, label: impl Into<String>, micros: u128) {
        if let Some(timing) = &self.inner.timing {
            lock(timing).push(TimingEntry {
                label: label.into(),
                micros,
            });
        }
    }

    /// Drains the buffered event stream as canonically ordered JSON lines
    /// (no schema header; see [`render_trace`]).
    pub fn finish(&self) -> Vec<String> {
        lock(&self.inner.tracer).take_lines()
    }

    /// Drains the timing channel (empty when the channel is closed).
    pub fn finish_timing(&self) -> Vec<TimingEntry> {
        match &self.inner.timing {
            Some(timing) => std::mem::take(&mut *lock(timing)),
            None => Vec::new(),
        }
    }
}

/// Runs `f` under a freshly installed JSONL trace scope (slot 0) and writes
/// the complete `bvc-trace/v1` document to `path` — the shared plumbing
/// behind the binaries' `--trace <path>` flag.  With `path = None`, `f`
/// simply runs untraced (and no file is touched).
///
/// # Errors
///
/// Fails only on the final file write; `f` has already run by then.
pub fn run_traced<T>(path: Option<&std::path::Path>, f: impl FnOnce() -> T) -> std::io::Result<T> {
    match path {
        None => Ok(f()),
        Some(path) => {
            let handle = TraceHandle::jsonl();
            let value = {
                let _scope = crate::scope::install(handle.clone(), 0);
                f()
            };
            std::fs::write(path, render_trace(&handle.finish()))?;
            Ok(value)
        }
    }
}

/// Assembles a complete `bvc-trace/v1` document: the schema header line
/// followed by the event lines, each newline-terminated.
pub fn render_trace(lines: &[String]) -> String {
    let mut out = String::with_capacity(32 + lines.iter().map(|l| l.len() + 1).sum::<usize>());
    out.push_str(&format!("{{\"schema\": \"{SCHEMA}\"}}\n"));
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_tracer_sorts_by_slot_then_seq() {
        let mut tracer = JsonlTracer::new();
        tracer.record(1, 0, &TraceEvent::RoundOpen { round: 10 });
        tracer.record(0, 1, &TraceEvent::RoundOpen { round: 2 });
        tracer.record(0, 0, &TraceEvent::RoundOpen { round: 1 });
        let lines = tracer.take_lines();
        assert!(lines[0].contains("\"round\": 1"));
        assert!(lines[1].contains("\"round\": 2"));
        assert!(lines[2].contains("\"round\": 10"));
        assert!(tracer.is_empty());
    }

    #[test]
    fn timing_channel_is_optional() {
        let silent = TraceHandle::jsonl();
        silent.record_timing("span", 123);
        assert!(silent.finish_timing().is_empty());

        let timed = TraceHandle::jsonl_with_timing();
        timed.record_timing("span", 123);
        let entries = timed.finish_timing();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].to_json(), "{\"label\": \"span\", \"us\": 123}");
    }

    #[test]
    fn render_trace_prepends_schema_header() {
        let doc = render_trace(&["{\"ev\": \"round_open\"}".to_string()]);
        assert!(doc.starts_with("{\"schema\": \"bvc-trace/v1\"}\n"));
        assert!(doc.ends_with("}\n"));
    }
}
