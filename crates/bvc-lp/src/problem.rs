//! Problem description types for the simplex solver.
//!
//! A [`LinearProgram`] is built incrementally: create it with the number of
//! decision variables and an optimisation [`Objective`], set objective
//! coefficients, and add [`Constraint`]s.  All decision variables are
//! non-negative by default; free (unbounded-below) variables can be declared
//! with [`LinearProgram::mark_free`], in which case the solver internally
//! splits them into a difference of two non-negative variables.

use crate::simplex::{solve_two_phase, solve_two_phase_warm, Solution, SolveMode, SolveStatus};
use crate::workspace::{with_thread_workspace, SimplexWorkspace};

/// Direction of optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimise the objective function.
    Minimize,
    /// Maximise the objective function.
    Maximize,
}

/// Relation between the left-hand side of a constraint and its right-hand
/// side constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `lhs ≤ rhs`
    LessEq,
    /// `lhs = rhs`
    Equal,
    /// `lhs ≥ rhs`
    GreaterEq,
}

/// A single linear constraint `coefficients · x  <relation>  rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Coefficient of every decision variable (length = number of variables).
    pub coefficients: Vec<f64>,
    /// The relation between the weighted sum and the right-hand side.
    pub relation: Relation,
    /// Right-hand side constant.
    pub rhs: f64,
}

/// A linear program over real decision variables.
///
/// Variables are indexed `0..num_variables`.  Every variable is constrained to
/// be non-negative unless it has been marked free via
/// [`LinearProgram::mark_free`].
#[derive(Debug, Clone)]
pub struct LinearProgram {
    num_variables: usize,
    objective: Objective,
    objective_coefficients: Vec<f64>,
    constraints: Vec<Constraint>,
    free: Vec<bool>,
}

impl LinearProgram {
    /// Creates an empty linear program with `num_variables` non-negative
    /// decision variables and a zero objective.
    ///
    /// # Panics
    ///
    /// Panics if `num_variables == 0`.
    pub fn new(num_variables: usize, objective: Objective) -> Self {
        assert!(
            num_variables > 0,
            "a linear program needs at least one variable"
        );
        Self {
            num_variables,
            objective,
            objective_coefficients: vec![0.0; num_variables],
            constraints: Vec::new(),
            free: vec![false; num_variables],
        }
    }

    /// Returns the number of decision variables.
    pub fn num_variables(&self) -> usize {
        self.num_variables
    }

    /// Returns the number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Returns the optimisation direction.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Returns the objective coefficient vector.
    pub fn objective_coefficients(&self) -> &[f64] {
        &self.objective_coefficients
    }

    /// Returns the constraints added so far.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Returns `true` if variable `var` has been marked as free.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn is_free(&self, var: usize) -> bool {
        self.free[var]
    }

    /// Sets the objective coefficient of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_objective_coefficient(&mut self, var: usize, coefficient: f64) -> &mut Self {
        assert!(
            var < self.num_variables,
            "variable index {var} out of range"
        );
        self.objective_coefficients[var] = coefficient;
        self
    }

    /// Marks variable `var` as *free*: allowed to take any real value rather
    /// than being restricted to non-negative values.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn mark_free(&mut self, var: usize) -> &mut Self {
        assert!(
            var < self.num_variables,
            "variable index {var} out of range"
        );
        self.free[var] = true;
        self
    }

    /// Adds the constraint `coefficients · x <relation> rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coefficients.len()` differs from the number of variables, or
    /// if any coefficient or the right-hand side is not finite.
    pub fn add_constraint(
        &mut self,
        coefficients: Vec<f64>,
        relation: Relation,
        rhs: f64,
    ) -> &mut Self {
        assert_eq!(
            coefficients.len(),
            self.num_variables,
            "constraint has {} coefficients but the program has {} variables",
            coefficients.len(),
            self.num_variables
        );
        assert!(
            coefficients.iter().all(|c| c.is_finite()) && rhs.is_finite(),
            "constraint coefficients and right-hand side must be finite"
        );
        self.constraints.push(Constraint {
            coefficients,
            relation,
            rhs,
        });
        self
    }

    /// Solves the linear program with the two-phase simplex method, using the
    /// calling thread's shared [`SimplexWorkspace`] for tableau buffers.
    ///
    /// The returned [`Solution`] carries a [`SolveStatus`](crate::SolveStatus)
    /// of `Optimal`, `Infeasible` or `Unbounded`; when optimal, `values` holds
    /// one optimal assignment of the decision variables (in their original
    /// indexing, with free variables already recombined).
    pub fn solve(&self) -> Solution {
        with_thread_workspace(|ws| solve_two_phase(self, ws, SolveMode::Full))
    }

    /// Like [`LinearProgram::solve`], but leasing tableau buffers from an
    /// explicitly supplied workspace (useful for benchmarks and long-lived
    /// engines that want to control buffer reuse).
    pub fn solve_with(&self, workspace: &mut SimplexWorkspace) -> Solution {
        solve_two_phase(self, workspace, SolveMode::Full)
    }

    /// Decides feasibility only: runs phase 1 of the two-phase method and
    /// stops, skipping the user objective and witness extraction.  Returns
    /// [`SolveStatus::Optimal`] when a feasible point exists and
    /// [`SolveStatus::Infeasible`] otherwise.
    pub fn solve_feasibility(&self) -> SolveStatus {
        with_thread_workspace(|ws| solve_two_phase(self, ws, SolveMode::FeasibilityOnly).status)
    }

    /// Like [`LinearProgram::solve_feasibility`], with an explicit workspace.
    pub fn solve_feasibility_with(&self, workspace: &mut SimplexWorkspace) -> SolveStatus {
        solve_two_phase(self, workspace, SolveMode::FeasibilityOnly).status
    }

    /// [`LinearProgram::solve_feasibility_with`] with a **warm-started**
    /// phase 1: the entering-column scan fronts the columns of the final
    /// basis of the previous completed warm solve of the same tableau shape,
    /// remembered inside `workspace` (and cleared whenever the workspace
    /// crosses a trace scope).  Because the reordering is still Bland's rule
    /// under a total order that is fixed for the whole solve, the verdict is
    /// **identical** to [`LinearProgram::solve_feasibility`] on every input —
    /// warm starts change the pivot walk, never the answer.  Warm starts are
    /// deliberately not offered for full solves: a full solve's chosen point
    /// could depend on the walk, and point-valued answers must stay
    /// history-free.
    pub fn solve_feasibility_warm_with(&self, workspace: &mut SimplexWorkspace) -> SolveStatus {
        solve_two_phase_warm(self, workspace).status
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveStatus;

    #[test]
    fn new_program_has_zero_objective() {
        let lp = LinearProgram::new(3, Objective::Minimize);
        assert_eq!(lp.num_variables(), 3);
        assert_eq!(lp.num_constraints(), 0);
        assert_eq!(lp.objective_coefficients(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn zero_variables_panics() {
        let _ = LinearProgram::new(0, Objective::Minimize);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn objective_coefficient_out_of_range_panics() {
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        lp.set_objective_coefficient(5, 1.0);
    }

    #[test]
    #[should_panic(expected = "coefficients")]
    fn wrong_constraint_arity_panics() {
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        lp.add_constraint(vec![1.0], Relation::Equal, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_constraint_panics() {
        let mut lp = LinearProgram::new(1, Objective::Minimize);
        lp.add_constraint(vec![f64::NAN], Relation::Equal, 1.0);
    }

    #[test]
    fn free_variable_flag_round_trips() {
        let mut lp = LinearProgram::new(2, Objective::Minimize);
        assert!(!lp.is_free(1));
        lp.mark_free(1);
        assert!(lp.is_free(1));
        assert!(!lp.is_free(0));
    }

    #[test]
    fn trivial_feasibility_program() {
        // No constraints, minimise x0: optimum is x0 = 0.
        let mut lp = LinearProgram::new(1, Objective::Minimize);
        lp.set_objective_coefficient(0, 1.0);
        let s = lp.solve();
        assert_eq!(s.status, SolveStatus::Optimal);
        assert!(s.values[0].abs() < 1e-9);
    }
}
