//! # bvc-service — a multi-shot consensus service over the BVC protocols
//!
//! Everything below `bvc-service` is one-shot: build a
//! [`BvcSession`](bvc_core::BvcSession), run it, read the report.  The
//! paper's protocols, however, are meant to be the core of a *replicated
//! service* that decides a stream of instances.  This crate is that service
//! layer: a [`BvcService`] multiplexes many consensus instances over one
//! persistent configuration — same process shape, same topology, same
//! long-lived shared Γ cache — and streams one JSONL verdict per instance
//! as it completes.
//!
//! ## Architecture
//!
//! ```text
//! ServiceConfig (template + per-instance overrides, validated up front)
//!      │  batched admission (backpressure: ≤ 2 batches in flight)
//!      ▼
//! sharded worker pool (one deque per worker, work stealing)
//!      │  one BvcSession per instance; per-instance Γ cache chained to
//!      │  the service-lifetime SharedGammaCache (cross-instance reuse)
//!      ▼
//! sequence-numbered reorder buffer  ──►  VerdictSink (JSONL / memory)
//! ```
//!
//! Verdict lines carry no timing, and the reorder buffer emits them in
//! admission order, so the stream is **byte-identical** for any worker
//! count and batch size — the determinism tests pin this.  Timing lives in
//! the aggregate [`ServiceStats`]: decisions/sec, p50/p99/max instance
//! latency, cache hit rates (including the *cross-instance* rate measured
//! by the shared parent cache), and per-worker utilization.
//!
//! ## Quickstart
//!
//! ```
//! use bvc_core::{InstanceOverrides, ProtocolKind, RunConfig};
//! use bvc_geometry::Point;
//! use bvc_service::{BvcService, MemorySink, ServiceConfig};
//!
//! let template = RunConfig::new(5, 1, 2).epsilon(0.1);
//! let instances = (0..8u64)
//!     .map(|seed| InstanceOverrides {
//!         seed,
//!         honest_inputs: Some(
//!             (0..4)
//!                 .map(|i| Point::uniform(2, (seed as f64 + i as f64) / 16.0))
//!                 .collect(),
//!         ),
//!         ..InstanceOverrides::default()
//!     })
//!     .collect();
//! let config = ServiceConfig::new(ProtocolKind::RestrictedSync, template)
//!     .instances(instances)
//!     .workers(2)
//!     .batch(4);
//! let mut sink = MemorySink::new();
//! let stats = BvcService::new(config).unwrap().run(&mut sink).unwrap();
//! assert_eq!(stats.instances, 8);
//! assert_eq!(sink.lines().len(), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod service;
pub mod sink;
pub mod stats;

pub use config::{CacheMode, ServiceConfig, ServiceError};
pub use service::BvcService;
pub use sink::{JsonlSink, MemorySink, ReorderBuffer, VerdictSink};
pub use stats::{CacheStats, LatencyStats, QueueStats, ServiceStats, WorkerStats};
