//! Approximate Byzantine vector consensus in asynchronous systems
//! (Section 3.2).
//!
//! The algorithm, for `n ≥ (d + 2)f + 1`:
//!
//! 1. In its round `t`, each process runs the AAD-style exchange
//!    ([`crate::aad`]) to obtain a tuple set `B_i[t]` with Properties 1–3.
//! 2. It forms the multiset `Z_i` by adding one deterministically chosen point
//!    of `Γ(Φ(C))` for `(n−f)`-sized subsets `C ⊆ B_i[t]` (all of them, or —
//!    with the Appendix F optimisation — only the witness-advertised ones),
//!    and sets its new state to the average of `Z_i` (equation (9)).
//! 3. It terminates after `1 + ⌈log_{1/(1-γ)} (U − ν)/ε⌉` rounds, where
//!    `γ = 1/(n·C(n,n−f))` (or `1/n²` with the optimisation).
//!
//! [`ApproxBvcProcess`] implements the honest protocol as an
//! [`AsyncProcess`]; [`ByzantineApproxProcess`] wraps it with a forging
//! adversary.  Processes keep serving reliable-broadcast traffic for *earlier*
//! rounds even after moving on, which is what makes the exchange's totality
//! (and hence liveness for slower processes) hold.

use crate::aad::{AadExchange, AadMsg};
use crate::config::BvcConfig;
use crate::convergence::{gamma, gamma_witness_optimized, round_threshold};
use crate::witness::{average_state, build_zi_full_cached, build_zi_witness_cached};
use bvc_adversary::PointForge;
use bvc_geometry::{Point, SharedGammaCache};
use bvc_net::{broadcast_to_all, AsyncProcess, Outgoing, ProcessId};
use std::collections::BTreeMap;

/// Which subset-selection rule Step 2 uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateRule {
    /// Every `(n−f)`-subset of `B_i[t]` (the rule proved in Theorem 5).
    FullSubsets,
    /// Only the witness-advertised subsets (Appendix F), at most `n` of them.
    WitnessOptimized,
}

/// Decision of an honest asynchronous process, together with the per-round
/// telemetry the convergence experiments consume.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxOutput {
    /// The decision vector (the state after the final round).
    pub decision: Point,
    /// `history[t]` is the state `v_i[t]`; index 0 is the input vector.
    pub history: Vec<Point>,
    /// `zi_sizes[t-1]` is `|Z_i|` in round `t` (the Appendix F optimisation
    /// bounds this by `n`; the full rule by `C(|B_i|, n−f)`).
    pub zi_sizes: Vec<usize>,
}

/// Honest process of the asynchronous approximate BVC algorithm.
pub struct ApproxBvcProcess {
    config: BvcConfig,
    me: usize,
    rule: UpdateRule,
    state: Point,
    current_round: usize,
    max_rounds: usize,
    exchanges: BTreeMap<usize, AadExchange>,
    /// Messages that arrived for rounds this process has not started yet.
    future: BTreeMap<usize, Vec<(usize, AadMsg)>>,
    /// State at the end of each completed round (index 0 = initial state).
    history: Vec<Point>,
    /// `|Z_i|` per completed round.
    zi_sizes: Vec<usize>,
    decision: Option<Point>,
    gamma_cache: Option<SharedGammaCache>,
}

impl ApproxBvcProcess {
    /// Creates the honest process with index `me` and input vector `input`,
    /// using the given update rule.
    ///
    /// # Panics
    ///
    /// Panics if `me >= config.n`, `input.dim() != config.d` or
    /// `config.f == 0`.
    pub fn new(config: BvcConfig, me: usize, input: Point, rule: UpdateRule) -> Self {
        assert!(me < config.n, "process index {me} out of range");
        assert_eq!(input.dim(), config.d, "input dimension must equal config.d");
        assert!(config.f >= 1, "ApproxBvcProcess requires f >= 1");
        let max_rounds = Self::round_budget(&config, rule);
        Self {
            history: vec![input.clone()],
            config,
            me,
            rule,
            state: input,
            current_round: 0,
            max_rounds,
            exchanges: BTreeMap::new(),
            future: BTreeMap::new(),
            zi_sizes: Vec::new(),
            decision: None,
            gamma_cache: None,
        }
    }

    /// Shares a [`GammaCache`](bvc_geometry::GammaCache) with the Step-2
    /// subset evaluations of this process (both update rules); overlapping
    /// `B_i[t]` sets across processes make the sharing substantial even
    /// under asynchrony.  Cached and uncached runs produce identical states.
    pub fn with_gamma_cache(mut self, cache: SharedGammaCache) -> Self {
        self.gamma_cache = Some(cache);
        self
    }

    /// The number of asynchronous rounds the termination rule of Step 3
    /// prescribes for this configuration and update rule.
    pub fn round_budget(config: &BvcConfig, rule: UpdateRule) -> usize {
        let g = match rule {
            UpdateRule::FullSubsets => gamma(config.n, config.f),
            UpdateRule::WitnessOptimized => gamma_witness_optimized(config.n),
        };
        round_threshold(g, config.lower_bound, config.upper_bound, config.epsilon)
    }

    /// The per-round states recorded so far (`history()[t]` is `v_i[t]`;
    /// index 0 is the input).  Used by the convergence experiments.
    pub fn history(&self) -> &[Point] {
        &self.history
    }

    /// The current round number (0 before the first round starts).
    pub fn current_round(&self) -> usize {
        self.current_round
    }

    fn fan_out(&self, msgs: Vec<AadMsg>) -> Vec<Outgoing<AadMsg>> {
        let mut out = Vec::new();
        for msg in msgs {
            out.extend(broadcast_to_all(
                self.config.n,
                Some(ProcessId::new(self.me)),
                &msg,
            ));
        }
        out
    }

    fn start_round(&mut self, round: usize) -> Vec<AadMsg> {
        self.current_round = round;
        let (exchange, mut msgs) = AadExchange::start(
            self.config.n,
            self.config.f,
            self.me,
            round,
            self.state.clone(),
        );
        self.exchanges.insert(round, exchange);
        // Replay any messages that arrived for this round before we started it.
        if let Some(buffered) = self.future.remove(&round) {
            let exchange = self.exchanges.get_mut(&round).expect("just inserted");
            for (from, msg) in buffered {
                msgs.extend(exchange.handle(from, &msg));
            }
        }
        msgs
    }

    /// Advances through as many rounds as have completed (an exchange can
    /// complete instantly on replayed buffered messages), collecting all
    /// messages to send.
    fn advance_if_complete(&mut self) -> Vec<AadMsg> {
        let mut out = Vec::new();
        loop {
            if self.decision.is_some() {
                return out;
            }
            let round = self.current_round;
            let Some(exchange) = self.exchanges.get(&round) else {
                return out;
            };
            let Some(done) = exchange.completed() else {
                return out;
            };
            // Step 2: build Z_i and average it.
            let quorum = self.config.n - self.config.f;
            let zi = match self.rule {
                UpdateRule::FullSubsets => {
                    let entries: Vec<Point> = done.entries.iter().map(|(_, v)| v.clone()).collect();
                    build_zi_full_cached(
                        &entries,
                        quorum,
                        self.config.f,
                        self.gamma_cache.as_deref(),
                    )
                }
                UpdateRule::WitnessOptimized => {
                    let sets: Vec<Vec<Point>> = done
                        .witness_sets
                        .iter()
                        .map(|set| set.iter().map(|(_, v)| v.clone()).collect())
                        .collect();
                    build_zi_witness_cached(&sets, self.config.f, self.gamma_cache.as_deref())
                }
            };
            self.zi_sizes.push(zi.len());
            if !zi.is_empty() {
                self.state = average_state(&zi);
            }
            self.history.push(self.state.clone());
            // Step 3: terminate after the round budget.
            if round >= self.max_rounds {
                self.decision = Some(self.state.clone());
                return out;
            }
            out.extend(self.start_round(round + 1));
        }
    }
}

impl AsyncProcess for ApproxBvcProcess {
    type Msg = AadMsg;
    type Output = ApproxOutput;

    fn on_start(&mut self) -> Vec<Outgoing<AadMsg>> {
        let mut msgs = self.start_round(1);
        msgs.extend(self.advance_if_complete());
        self.fan_out(msgs)
    }

    fn on_message(&mut self, from: ProcessId, msg: AadMsg) -> Vec<Outgoing<AadMsg>> {
        let round = msg.round();
        let mut responses = Vec::new();
        if let Some(exchange) = self.exchanges.get_mut(&round) {
            responses.extend(exchange.handle(from.index(), &msg));
        } else if round > self.current_round && round <= self.max_rounds {
            // A faster process is already in a later round: buffer until we
            // get there.
            self.future
                .entry(round)
                .or_default()
                .push((from.index(), msg));
        }
        responses.extend(self.advance_if_complete());
        self.fan_out(responses)
    }

    fn output(&self) -> Option<ApproxOutput> {
        self.decision.as_ref().map(|decision| ApproxOutput {
            decision: decision.clone(),
            history: self.history.clone(),
            zi_sizes: self.zi_sizes.clone(),
        })
    }
}

/// A Byzantine participant of the asynchronous protocol: runs the honest
/// message schedule internally and forges every point it sends, per receiver
/// (so it can equivocate), or drops messages when its strategy is silent.
pub struct ByzantineApproxProcess {
    inner: ApproxBvcProcess,
    forge: PointForge,
}

impl ByzantineApproxProcess {
    /// Creates a Byzantine process with the given forge; the inner honest
    /// skeleton uses `nominal_input` to keep its message schedule well formed.
    pub fn new(
        config: BvcConfig,
        me: usize,
        nominal_input: Point,
        rule: UpdateRule,
        forge: PointForge,
    ) -> Self {
        Self {
            inner: ApproxBvcProcess::new(config, me, nominal_input, rule),
            forge,
        }
    }

    fn corrupt(&mut self, outgoing: Vec<Outgoing<AadMsg>>) -> Vec<Outgoing<AadMsg>> {
        let mut forged = Vec::with_capacity(outgoing.len());
        for mut out in outgoing {
            let round = out.msg.round();
            if let Some(point) = self.forge.forge(round, out.to.index()) {
                out.msg.forge_points(&point);
                forged.push(out);
            }
        }
        forged
    }
}

impl AsyncProcess for ByzantineApproxProcess {
    type Msg = AadMsg;
    type Output = ApproxOutput;

    fn on_start(&mut self) -> Vec<Outgoing<AadMsg>> {
        let honest = self.inner.on_start();
        self.corrupt(honest)
    }

    fn on_message(&mut self, from: ProcessId, msg: AadMsg) -> Vec<Outgoing<AadMsg>> {
        let honest = self.inner.on_message(from, msg);
        self.corrupt(honest)
    }

    fn output(&self) -> Option<ApproxOutput> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvc_adversary::ByzantineStrategy;
    use bvc_net::{AsyncNetwork, DeliveryPolicy};

    /// Runs the asynchronous algorithm with the last `f` processes Byzantine.
    /// Returns the honest decisions and the honest inputs.
    #[allow(clippy::too_many_arguments)]
    fn run_approx(
        n: usize,
        f: usize,
        d: usize,
        epsilon: f64,
        honest_inputs: Vec<Point>,
        strategy: ByzantineStrategy,
        rule: UpdateRule,
        policy: DeliveryPolicy,
        seed: u64,
    ) -> (Vec<Point>, Vec<Point>) {
        assert_eq!(honest_inputs.len(), n - f);
        let config = BvcConfig::new(n, f, d)
            .unwrap()
            .with_epsilon(epsilon)
            .unwrap()
            .with_value_bounds(0.0, 1.0)
            .unwrap();
        let mut processes: Vec<Box<dyn AsyncProcess<Msg = AadMsg, Output = ApproxOutput>>> =
            Vec::new();
        for (i, input) in honest_inputs.iter().enumerate() {
            processes.push(Box::new(ApproxBvcProcess::new(
                config.clone(),
                i,
                input.clone(),
                rule,
            )));
        }
        for b in 0..f {
            let me = n - f + b;
            let mut forge = PointForge::new(strategy, d, 0.0, 1.0, seed + 1000 + b as u64);
            forge.set_honest_value(Point::uniform(d, 0.5));
            processes.push(Box::new(ByzantineApproxProcess::new(
                config.clone(),
                me,
                Point::uniform(d, 0.5),
                rule,
                forge,
            )));
        }
        let honest: Vec<usize> = (0..n - f).collect();
        let outcome = AsyncNetwork::new(processes, policy, seed, 2_000_000).run(&honest);
        assert!(outcome.completed, "honest processes must terminate");
        let decisions = honest
            .iter()
            .map(|&i| {
                outcome.outputs[i]
                    .clone()
                    .expect("honest decision")
                    .decision
            })
            .collect();
        (decisions, honest_inputs)
    }

    fn assert_eps_agreement(decisions: &[Point], eps: f64) {
        for pair in decisions.windows(2) {
            assert!(
                pair[0].linf_distance(&pair[1]) <= eps,
                "ε-agreement violated: {} vs {} (ε = {eps})",
                pair[0],
                pair[1]
            );
        }
    }

    use crate::validity::assert_strict_validity as assert_validity;

    #[test]
    fn scalar_case_with_outlier_attack() {
        // d = 1, f = 1, n = (1+2)·1+1 = 4.
        let inputs = vec![
            Point::new(vec![0.1]),
            Point::new(vec![0.5]),
            Point::new(vec![0.9]),
        ];
        let (decisions, honest) = run_approx(
            4,
            1,
            1,
            0.05,
            inputs,
            ByzantineStrategy::FixedOutlier,
            UpdateRule::WitnessOptimized,
            DeliveryPolicy::RandomFair,
            11,
        );
        assert_eps_agreement(&decisions, 0.05);
        assert_validity(&decisions, &honest);
    }

    #[test]
    fn planar_case_with_anti_convergence_attack() {
        // d = 2, f = 1, n = 5.
        let inputs = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.0, 1.0]),
            Point::new(vec![1.0, 1.0]),
        ];
        let (decisions, honest) = run_approx(
            5,
            1,
            2,
            0.1,
            inputs,
            ByzantineStrategy::AntiConvergence,
            UpdateRule::WitnessOptimized,
            DeliveryPolicy::RandomFair,
            13,
        );
        assert_eps_agreement(&decisions, 0.1);
        assert_validity(&decisions, &honest);
    }

    #[test]
    fn full_subset_rule_also_converges() {
        let inputs = vec![
            Point::new(vec![0.2]),
            Point::new(vec![0.4]),
            Point::new(vec![0.8]),
        ];
        let (decisions, honest) = run_approx(
            4,
            1,
            1,
            0.1,
            inputs,
            ByzantineStrategy::Equivocate,
            UpdateRule::FullSubsets,
            DeliveryPolicy::RandomFair,
            17,
        );
        assert_eps_agreement(&decisions, 0.1);
        assert_validity(&decisions, &honest);
    }

    #[test]
    fn adversarial_scheduling_delaying_one_honest_process() {
        // Delay all traffic from honest process 0: the others still terminate
        // (n − f of them suffice), and ε-agreement/validity hold for everyone
        // who decides.
        let inputs = vec![
            Point::new(vec![0.1, 0.9]),
            Point::new(vec![0.9, 0.1]),
            Point::new(vec![0.5, 0.5]),
            Point::new(vec![0.3, 0.7]),
        ];
        let (decisions, honest) = run_approx(
            5,
            1,
            2,
            0.1,
            inputs,
            ByzantineStrategy::RandomNoise,
            UpdateRule::WitnessOptimized,
            DeliveryPolicy::DelayFrom(vec![ProcessId::new(0)]),
            19,
        );
        assert_eps_agreement(&decisions, 0.1);
        assert_validity(&decisions, &honest);
    }

    #[test]
    fn silent_byzantine_process_does_not_block_progress() {
        let inputs = vec![
            Point::new(vec![0.0]),
            Point::new(vec![0.3]),
            Point::new(vec![1.0]),
        ];
        let (decisions, honest) = run_approx(
            4,
            1,
            1,
            0.05,
            inputs,
            ByzantineStrategy::Silent,
            UpdateRule::WitnessOptimized,
            DeliveryPolicy::RoundRobin,
            23,
        );
        assert_eps_agreement(&decisions, 0.05);
        assert_validity(&decisions, &honest);
    }

    #[test]
    fn history_shows_contracting_range() {
        // Measure the per-round range across honest processes: it must shrink
        // from the initial range to within ε at the end, and never expand
        // beyond the initial honest range (validity of intermediate states).
        let n = 4;
        let f = 1;
        let config = BvcConfig::new(n, f, 1).unwrap().with_epsilon(0.05).unwrap();
        let inputs = [0.0, 0.5, 1.0];
        let mut processes: Vec<Box<dyn AsyncProcess<Msg = AadMsg, Output = ApproxOutput>>> =
            Vec::new();
        for (i, v) in inputs.iter().enumerate() {
            processes.push(Box::new(ApproxBvcProcess::new(
                config.clone(),
                i,
                Point::new(vec![*v]),
                UpdateRule::WitnessOptimized,
            )));
        }
        let mut forge = PointForge::new(ByzantineStrategy::AntiConvergence, 1, 0.0, 1.0, 5);
        forge.set_honest_value(Point::new(vec![0.5]));
        processes.push(Box::new(ByzantineApproxProcess::new(
            config.clone(),
            3,
            Point::new(vec![0.5]),
            UpdateRule::WitnessOptimized,
            forge,
        )));
        let outcome =
            AsyncNetwork::new(processes, DeliveryPolicy::RandomFair, 31, 2_000_000).run(&[0, 1, 2]);
        assert!(outcome.completed);
        let outputs: Vec<ApproxOutput> = (0..3)
            .map(|i| outcome.outputs[i].clone().unwrap())
            .collect();
        let decisions: Vec<f64> = outputs.iter().map(|o| o.decision.coord(0)).collect();
        let spread = decisions.iter().cloned().fold(f64::MIN, f64::max)
            - decisions.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread <= 0.05, "final spread {spread} exceeds ε");
        // All decisions stay within the honest input range [0, 1].
        assert!(decisions.iter().all(|&v| (-1e-9..=1.0 + 1e-9).contains(&v)));
        // Telemetry: the history covers every round plus the input, the
        // per-round range never exceeds the initial honest range, and |Z_i|
        // respects the Appendix F bound |Z_i| ≤ n.
        for output in &outputs {
            assert_eq!(output.history.len(), output.zi_sizes.len() + 1);
            assert!(output.zi_sizes.iter().all(|&s| s <= n));
            assert!(output
                .history
                .iter()
                .all(|p| (-1e-9..=1.0 + 1e-9).contains(&p.coord(0))));
        }
    }

    #[test]
    fn round_budget_matches_convergence_module() {
        let config = BvcConfig::new(4, 1, 1).unwrap().with_epsilon(0.1).unwrap();
        let full = ApproxBvcProcess::round_budget(&config, UpdateRule::FullSubsets);
        let optimized = ApproxBvcProcess::round_budget(&config, UpdateRule::WitnessOptimized);
        // For n = 4, f = 1 both γ's equal 1/16, so the budgets coincide.
        assert_eq!(full, optimized);
        assert!(full >= 2);
    }

    #[test]
    #[should_panic(expected = "requires f >= 1")]
    fn zero_faults_rejected() {
        let config = BvcConfig::new(3, 0, 1).unwrap();
        let _ = ApproxBvcProcess::new(config, 0, Point::new(vec![0.0]), UpdateRule::FullSubsets);
    }
}
