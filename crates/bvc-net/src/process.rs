//! Process identities and message envelopes.
//!
//! The paper's system model (Section 1): `n` processes
//! `P = {p_1, …, p_n}`, every pair connected by a reliable FIFO channel
//! (complete graph).  Processes are identified here by a zero-based
//! [`ProcessId`]; the paper's `p_i` corresponds to `ProcessId::new(i - 1)`.

use std::fmt;

/// Identifier of a process in the system (zero-based index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process id from its zero-based index.
    pub fn new(index: usize) -> Self {
        Self(index)
    }

    /// The zero-based index of the process.
    pub fn index(self) -> usize {
        self.0
    }

    /// All process ids `0..n`.
    pub fn all(n: usize) -> Vec<ProcessId> {
        (0..n).map(ProcessId::new).collect()
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // One-based in display, matching the paper's p_1..p_n.
        write!(f, "p{}", self.0 + 1)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        Self::new(index)
    }
}

/// A message queued for sending: destination plus payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Outgoing<M> {
    /// Destination process.
    pub to: ProcessId,
    /// Message payload.
    pub msg: M,
}

impl<M> Outgoing<M> {
    /// Creates an outgoing message.
    pub fn new(to: ProcessId, msg: M) -> Self {
        Self { to, msg }
    }
}

/// A delivered message: original sender plus payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery<M> {
    /// The process that sent the message.
    pub from: ProcessId,
    /// Message payload.
    pub msg: M,
}

impl<M> Delivery<M> {
    /// Creates a delivery record.
    pub fn new(from: ProcessId, msg: M) -> Self {
        Self { from, msg }
    }
}

/// Builds one copy of `msg` addressed to every process in `0..n` except
/// (optionally) the sender itself.
pub fn broadcast_to_all<M: Clone>(
    n: usize,
    exclude: Option<ProcessId>,
    msg: &M,
) -> Vec<Outgoing<M>> {
    ProcessId::all(n)
        .into_iter()
        .filter(|&p| Some(p) != exclude)
        .map(|p| Outgoing::new(p, msg.clone()))
        .collect()
}

/// Canonicalises one sender's outgoing batch under the **local-broadcast**
/// delivery guarantee (Khan, Tseng & Vaidya, arXiv:1911.07298): all
/// out-neighbors of a sender observe the same message, so per-receiver
/// equivocation is structurally impossible.
///
/// Messages are grouped by receiver preserving per-receiver order; the k-th
/// message addressed to each receiver is replaced by the k-th message of the
/// *lowest-indexed* receiver that has a k-th message.  Receivers keep their
/// own slot counts (an omission fault model stays expressible), only payloads
/// are forced consistent.  Executors apply this *before* per-link faults
/// (vanish / drop / latency), so fault plans still compose per link.
///
/// Returns the sorted receiver set and the slot count (for trace
/// attribution), or `None` for an empty batch.
pub fn enforce_local_broadcast<M: Clone>(
    outgoing: &mut [Outgoing<M>],
) -> Option<(Vec<usize>, usize)> {
    if outgoing.is_empty() {
        return None;
    }
    let mut counts: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    let mut slot_of = Vec::with_capacity(outgoing.len());
    for out in outgoing.iter() {
        let count = counts.entry(out.to.index()).or_insert(0);
        slot_of.push(*count);
        *count += 1;
    }
    let slots = counts.values().copied().max().unwrap_or(0);
    let mut canonical: Vec<Option<M>> = (0..slots).map(|_| None).collect();
    for (slot, entry) in canonical.iter_mut().enumerate() {
        let Some((&receiver, _)) = counts.iter().find(|(_, &count)| count > slot) else {
            continue;
        };
        *entry = outgoing
            .iter()
            .zip(&slot_of)
            .find(|(out, &s)| out.to.index() == receiver && s == slot)
            .map(|(out, _)| out.msg.clone());
    }
    for (pos, out) in outgoing.iter_mut().enumerate() {
        if let Some(msg) = &canonical[slot_of[pos]] {
            out.msg = msg.clone();
        }
    }
    Some((counts.keys().copied().collect(), slots))
}

/// Message counters attributed to one process.
///
/// `sent` counts messages the process handed to the executor, `delivered`
/// counts messages delivered *to* it, and `dropped` counts messages it sent
/// that an injected drop fault destroyed (see `bvc_net::faults`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessCounters {
    /// Messages this process sent.
    pub sent: usize,
    /// Messages delivered to this process.
    pub delivered: usize,
    /// Messages this process sent that a drop fault destroyed.
    pub dropped: usize,
}

/// Execution statistics common to the synchronous and asynchronous executors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionStats {
    /// Total number of messages delivered.
    pub messages_delivered: usize,
    /// Total number of messages sent (may exceed deliveries if the execution
    /// was cut off).
    pub messages_sent: usize,
    /// Total number of messages destroyed by injected drop faults.
    pub messages_dropped: usize,
    /// Number of synchronous rounds executed, or of scheduler steps for the
    /// asynchronous executor.
    pub steps: usize,
    /// Per-process counters, indexed by process id.  Empty when the executor
    /// does not attribute messages (e.g. the threaded runtime).
    pub per_process: Vec<ProcessCounters>,
    /// Γ queries issued through the run's cache front end, when the driver
    /// measured them (cache-counter delta around the execution); `0` when
    /// the protocol does no geometry or the driver does not track it.
    pub gamma_queries: u64,
}

impl ExecutionStats {
    /// Zeroed statistics tracking `n` processes.
    pub fn for_processes(n: usize) -> Self {
        Self {
            per_process: vec![ProcessCounters::default(); n],
            ..Self::default()
        }
    }

    /// Records `count` messages sent by process `from`.
    pub fn record_sent(&mut self, from: usize, count: usize) {
        self.messages_sent += count;
        if let Some(counters) = self.per_process.get_mut(from) {
            counters.sent += count;
        }
    }

    /// Records one message delivered to process `to`.
    pub fn record_delivered(&mut self, to: usize) {
        self.messages_delivered += 1;
        if let Some(counters) = self.per_process.get_mut(to) {
            counters.delivered += 1;
        }
    }

    /// Records one message from process `from` destroyed by a drop fault.
    pub fn record_dropped(&mut self, from: usize) {
        self.messages_dropped += 1;
        if let Some(counters) = self.per_process.get_mut(from) {
            counters.dropped += 1;
        }
    }

    /// Folds another execution's statistics into this one — the aggregation
    /// primitive for multi-instance runs (one service stream = many
    /// executions).  Totals and steps are summed; per-process counters are
    /// summed element-wise, growing to the longer of the two vectors.
    pub fn absorb(&mut self, other: &ExecutionStats) {
        self.messages_delivered += other.messages_delivered;
        self.messages_sent += other.messages_sent;
        self.messages_dropped += other.messages_dropped;
        self.steps += other.steps;
        self.gamma_queries += other.gamma_queries;
        if self.per_process.len() < other.per_process.len() {
            self.per_process
                .resize(other.per_process.len(), ProcessCounters::default());
        }
        for (mine, theirs) in self.per_process.iter_mut().zip(&other.per_process) {
            mine.sent += theirs.sent;
            mine.delivered += theirs.delivered;
            mine.dropped += theirs.dropped;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip_and_display() {
        let p = ProcessId::new(2);
        assert_eq!(p.index(), 2);
        assert_eq!(format!("{p}"), "p3");
        let q: ProcessId = 5usize.into();
        assert_eq!(q.index(), 5);
    }

    #[test]
    fn all_ids_enumerates_in_order() {
        let ids = ProcessId::all(3);
        assert_eq!(
            ids,
            vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]
        );
    }

    #[test]
    fn broadcast_excludes_sender_when_requested() {
        let msgs = broadcast_to_all(4, Some(ProcessId::new(1)), &"hello");
        assert_eq!(msgs.len(), 3);
        assert!(msgs.iter().all(|m| m.to != ProcessId::new(1)));
    }

    #[test]
    fn broadcast_includes_everyone_without_exclusion() {
        let msgs = broadcast_to_all(3, None, &7u32);
        assert_eq!(msgs.len(), 3);
    }

    #[test]
    fn outgoing_and_delivery_constructors() {
        let out = Outgoing::new(ProcessId::new(0), 42);
        assert_eq!(out.to.index(), 0);
        assert_eq!(out.msg, 42);
        let del = Delivery::new(ProcessId::new(1), "x");
        assert_eq!(del.from.index(), 1);
    }

    #[test]
    fn local_broadcast_collapses_equivocation() {
        // Sender equivocates: "a" to p1, "b" to p3.  Under local broadcast
        // both receivers must observe the lowest receiver's payload.
        let mut batch = vec![
            Outgoing::new(ProcessId::new(2), "b"),
            Outgoing::new(ProcessId::new(0), "a"),
        ];
        let (receivers, slots) = enforce_local_broadcast(&mut batch).unwrap();
        assert_eq!(receivers, vec![0, 2]);
        assert_eq!(slots, 1);
        assert_eq!(batch[0].msg, "a");
        assert_eq!(batch[1].msg, "a");
        assert_eq!(batch[0].to, ProcessId::new(2));
        assert_eq!(batch[1].to, ProcessId::new(0));
    }

    #[test]
    fn local_broadcast_is_identity_for_uniform_batches() {
        let mut batch = broadcast_to_all(4, Some(ProcessId::new(1)), &7u32);
        let original = batch.clone();
        let (receivers, slots) = enforce_local_broadcast(&mut batch).unwrap();
        assert_eq!(batch, original);
        assert_eq!(receivers, vec![0, 2, 3]);
        assert_eq!(slots, 1);
    }

    #[test]
    fn local_broadcast_canonicalises_slots_independently() {
        // Two messages per receiver: each slot is forced to the lowest
        // receiver's payload for that slot, preserving per-receiver order.
        let mut batch = vec![
            Outgoing::new(ProcessId::new(1), "x1"),
            Outgoing::new(ProcessId::new(0), "y1"),
            Outgoing::new(ProcessId::new(1), "x2"),
            Outgoing::new(ProcessId::new(0), "y2"),
        ];
        let (receivers, slots) = enforce_local_broadcast(&mut batch).unwrap();
        assert_eq!(receivers, vec![0, 1]);
        assert_eq!(slots, 2);
        assert_eq!(batch[0].msg, "y1");
        assert_eq!(batch[1].msg, "y1");
        assert_eq!(batch[2].msg, "y2");
        assert_eq!(batch[3].msg, "y2");
    }

    #[test]
    fn local_broadcast_keeps_per_receiver_counts() {
        // Receiver 2 gets one extra message; its second slot draws from the
        // lowest receiver that *has* a second message (receiver 2 itself).
        let mut batch = vec![
            Outgoing::new(ProcessId::new(0), "a"),
            Outgoing::new(ProcessId::new(2), "b"),
            Outgoing::new(ProcessId::new(2), "c"),
        ];
        let (receivers, slots) = enforce_local_broadcast(&mut batch).unwrap();
        assert_eq!(receivers, vec![0, 2]);
        assert_eq!(slots, 2);
        assert_eq!(batch[0].msg, "a");
        assert_eq!(batch[1].msg, "a");
        assert_eq!(batch[2].msg, "c");
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn local_broadcast_on_empty_batch_is_none() {
        let mut batch: Vec<Outgoing<u32>> = Vec::new();
        assert!(enforce_local_broadcast(&mut batch).is_none());
    }

    #[test]
    fn stats_default_is_zeroed() {
        let s = ExecutionStats::default();
        assert_eq!(s.messages_delivered, 0);
        assert_eq!(s.messages_sent, 0);
        assert_eq!(s.messages_dropped, 0);
        assert_eq!(s.steps, 0);
        assert!(s.per_process.is_empty());
    }

    #[test]
    fn stats_attribute_messages_per_process() {
        let mut s = ExecutionStats::for_processes(3);
        s.record_sent(0, 4);
        s.record_sent(2, 1);
        s.record_delivered(1);
        s.record_delivered(1);
        s.record_dropped(0);
        assert_eq!(s.messages_sent, 5);
        assert_eq!(s.messages_delivered, 2);
        assert_eq!(s.messages_dropped, 1);
        assert_eq!(s.per_process[0].sent, 4);
        assert_eq!(s.per_process[0].dropped, 1);
        assert_eq!(s.per_process[1].delivered, 2);
        assert_eq!(s.per_process[2].sent, 1);
    }

    #[test]
    fn absorb_sums_totals_and_grows_per_process() {
        let mut total = ExecutionStats::for_processes(2);
        total.record_sent(0, 3);
        total.steps = 5;
        let mut other = ExecutionStats::for_processes(3);
        other.record_sent(0, 1);
        other.record_delivered(2);
        other.record_dropped(1);
        other.steps = 7;
        total.absorb(&other);
        assert_eq!(total.messages_sent, 4);
        assert_eq!(total.messages_delivered, 1);
        assert_eq!(total.messages_dropped, 1);
        assert_eq!(total.steps, 12);
        assert_eq!(total.per_process.len(), 3);
        assert_eq!(total.per_process[0].sent, 4);
        assert_eq!(total.per_process[1].dropped, 1);
        assert_eq!(total.per_process[2].delivered, 1);
    }

    #[test]
    fn out_of_range_attribution_is_ignored_but_counted_in_aggregate() {
        let mut s = ExecutionStats::for_processes(1);
        s.record_sent(5, 2);
        s.record_delivered(5);
        s.record_dropped(5);
        assert_eq!(s.messages_sent, 2);
        assert_eq!(s.messages_delivered, 1);
        assert_eq!(s.messages_dropped, 1);
        assert_eq!(s.per_process[0], ProcessCounters::default());
    }
}
