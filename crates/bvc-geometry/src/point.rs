//! Points in `R^d`.
//!
//! The paper treats a process input interchangeably as a *d-dimensional vector
//! of reals* and as a *point in Euclidean space* (Section 1).  [`Point`] is the
//! shared representation used throughout the workspace: an owned `Vec<f64>`
//! wrapper with the vector-space operations, norms and convex-combination
//! helpers the consensus algorithms need.

use std::fmt;
use std::ops::{Add, Index, Mul, Sub};

/// Default tolerance used by approximate comparisons of points.
pub const DEFAULT_TOLERANCE: f64 = 1e-7;

/// A point (equivalently, a vector) in `R^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `coords` is empty or contains a non-finite value.
    pub fn new(coords: Vec<f64>) -> Self {
        assert!(!coords.is_empty(), "a point needs at least one coordinate");
        assert!(
            coords.iter().all(|c| c.is_finite()),
            "point coordinates must be finite"
        );
        Self { coords }
    }

    /// The origin (all-zero vector) of `R^d`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn origin(dim: usize) -> Self {
        Self::new(vec![0.0; dim])
    }

    /// The `i`-th standard basis vector of `R^d` (1 in coordinate `i`, 0
    /// elsewhere).  Used by the impossibility constructions of Theorems 1
    /// and 4.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim` or `dim == 0`.
    pub fn standard_basis(dim: usize, i: usize) -> Self {
        assert!(i < dim, "basis index {i} out of range for dimension {dim}");
        let mut coords = vec![0.0; dim];
        coords[i] = 1.0;
        Self::new(coords)
    }

    /// A point with every coordinate equal to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `value` is not finite.
    pub fn uniform(dim: usize, value: f64) -> Self {
        Self::new(vec![value; dim])
    }

    /// The dimension `d` of the point.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Borrows the coordinates.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Consumes the point, returning its coordinates.
    pub fn into_coords(self) -> Vec<f64> {
        self.coords
    }

    /// Coordinate `l` (0-based; the paper indexes 1 ≤ l ≤ d).
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.dim()`.
    pub fn coord(&self, l: usize) -> f64 {
        self.coords[l]
    }

    /// Scales the point by `factor`.
    pub fn scale(&self, factor: f64) -> Self {
        Self {
            coords: self.coords.iter().map(|c| c * factor).collect(),
        }
    }

    /// Euclidean (L2) distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn distance(&self, other: &Self) -> f64 {
        self.check_same_dim(other);
        self.coords
            .iter()
            .zip(&other.coords)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Chebyshev (L∞) distance to `other`: the maximum per-coordinate
    /// absolute difference.  This is the metric in which the paper's
    /// ε-agreement condition is stated (each element within ε).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn linf_distance(&self, other: &Self) -> f64 {
        self.check_same_dim(other);
        self.coords
            .iter()
            .zip(&other.coords)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Returns `true` when every coordinate of `self` and `other` differs by
    /// at most `tolerance`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn approx_eq(&self, other: &Self, tolerance: f64) -> bool {
        self.linf_distance(other) <= tolerance
    }

    /// Componentwise convex combination `Σ weights[k] * points[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty, lengths differ, dimensions differ, any
    /// weight is negative beyond tolerance, or the weights do not sum to 1
    /// within `1e-6`.
    pub fn convex_combination(points: &[Point], weights: &[f64]) -> Self {
        assert!(!points.is_empty(), "convex combination of zero points");
        assert_eq!(
            points.len(),
            weights.len(),
            "points and weights must have equal length"
        );
        let total: f64 = weights.iter().sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "convex-combination weights must sum to 1 (got {total})"
        );
        assert!(
            weights.iter().all(|&w| w >= -1e-9),
            "convex-combination weights must be non-negative"
        );
        let dim = points[0].dim();
        let mut coords = vec![0.0; dim];
        for (p, &w) in points.iter().zip(weights) {
            assert_eq!(p.dim(), dim, "points must share a dimension");
            for (c, pc) in coords.iter_mut().zip(p.coords()) {
                *c += w * pc;
            }
        }
        Self::new(coords)
    }

    /// The centroid (arithmetic mean) of `points`.
    ///
    /// This is the deterministic averaging step (9) of the asynchronous
    /// algorithm: `v_i[t] = (Σ_{z ∈ Z_i} z) / |Z_i|`.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or dimensions differ.
    pub fn centroid(points: &[Point]) -> Self {
        assert!(!points.is_empty(), "centroid of zero points");
        let n = points.len() as f64;
        let weights = vec![1.0 / n; points.len()];
        Self::convex_combination(points, &weights)
    }

    fn check_same_dim(&self, other: &Self) {
        assert_eq!(
            self.dim(),
            other.dim(),
            "dimension mismatch: {} vs {}",
            self.dim(),
            other.dim()
        );
    }
}

impl Index<usize> for Point {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.coords[index]
    }
}

impl Add<&Point> for &Point {
    type Output = Point;

    fn add(self, rhs: &Point) -> Point {
        self.check_same_dim(rhs);
        Point::new(
            self.coords
                .iter()
                .zip(&rhs.coords)
                .map(|(a, b)| a + b)
                .collect(),
        )
    }
}

impl Sub<&Point> for &Point {
    type Output = Point;

    fn sub(self, rhs: &Point) -> Point {
        self.check_same_dim(rhs);
        Point::new(
            self.coords
                .iter()
                .zip(&rhs.coords)
                .map(|(a, b)| a - b)
                .collect(),
        )
    }
}

impl Mul<f64> for &Point {
    type Output = Point;

    fn mul(self, rhs: f64) -> Point {
        self.scale(rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c:.4}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Self::new(coords)
    }
}

impl From<&[f64]> for Point {
    fn from(coords: &[f64]) -> Self {
        Self::new(coords.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = Point::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.coord(1), 2.0);
        assert_eq!(p[2], 3.0);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "at least one coordinate")]
    fn empty_point_panics() {
        let _ = Point::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_coordinate_panics() {
        let _ = Point::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn origin_and_basis() {
        assert_eq!(Point::origin(3).coords(), &[0.0, 0.0, 0.0]);
        assert_eq!(Point::standard_basis(3, 1).coords(), &[0.0, 1.0, 0.0]);
        assert_eq!(Point::uniform(2, 0.5).coords(), &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_index_out_of_range_panics() {
        let _ = Point::standard_basis(2, 2);
    }

    #[test]
    fn distances() {
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![3.0, 4.0]);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.linf_distance(&b) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn distance_dimension_mismatch_panics() {
        let a = Point::new(vec![0.0]);
        let b = Point::new(vec![0.0, 1.0]);
        let _ = a.distance(&b);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Point::new(vec![1.0, 2.0]);
        let b = Point::new(vec![3.0, 5.0]);
        assert_eq!((&a + &b).coords(), &[4.0, 7.0]);
        assert_eq!((&b - &a).coords(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).coords(), &[2.0, 4.0]);
    }

    #[test]
    fn convex_combination_of_two_points_is_segment_midpoint() {
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![2.0, 4.0]);
        let mid = Point::convex_combination(&[a, b], &[0.5, 0.5]);
        assert_eq!(mid.coords(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn convex_combination_with_bad_weights_panics() {
        let a = Point::new(vec![0.0]);
        let b = Point::new(vec![1.0]);
        let _ = Point::convex_combination(&[a, b], &[0.7, 0.7]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn convex_combination_with_negative_weight_panics() {
        let a = Point::new(vec![0.0]);
        let b = Point::new(vec![1.0]);
        let _ = Point::convex_combination(&[a, b], &[1.5, -0.5]);
    }

    #[test]
    fn centroid_of_triangle() {
        let pts = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![3.0, 0.0]),
            Point::new(vec![0.0, 3.0]),
        ];
        let c = Point::centroid(&pts);
        assert!(c.approx_eq(&Point::new(vec![1.0, 1.0]), 1e-12));
    }

    #[test]
    fn approx_eq_uses_linf() {
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![1e-8, -1e-8]);
        assert!(a.approx_eq(&b, DEFAULT_TOLERANCE));
        assert!(!a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn display_formats_coordinates() {
        let p = Point::new(vec![0.5, 1.0]);
        assert_eq!(format!("{p}"), "(0.5000, 1.0000)");
    }

    #[test]
    fn from_conversions() {
        let p: Point = vec![1.0, 2.0].into();
        assert_eq!(p.dim(), 2);
        let q: Point = [3.0, 4.0].as_slice().into();
        assert_eq!(q.coords(), &[3.0, 4.0]);
    }
}
