//! Byzantine-robust aggregation of probability vectors: vector consensus vs
//! per-dimension scalar consensus.
//!
//! The paper's introduction shows why running scalar Byzantine consensus
//! independently on every coordinate is not enough: each coordinate can be
//! individually "valid" while the assembled vector falls outside the convex
//! hull of the honest inputs.  With probability-vector inputs (think of
//! distributed learners agreeing on a class distribution or a mixture weight
//! vector), the scalar baseline can output a vector that is not even a
//! probability distribution.
//!
//! This example runs both algorithms on the paper's own counterexample and on
//! random probability-vector workloads, and reports how often each violates
//! vector validity.
//!
//! Run with:
//!
//! ```text
//! cargo run --example ml_aggregation
//! ```

use bvc::adversary::ByzantineStrategy;
use bvc::baselines::{per_dimension_decision, ScalarPick};
use bvc::core::{BvcSession, ProtocolKind, RunConfig};
use bvc::geometry::{ConvexHull, Point, PointMultiset, WorkloadGenerator};

fn main() {
    println!("== The paper's counterexample (Section 1) ==");
    let honest = vec![
        Point::new(vec![2.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0]),
        Point::new(vec![1.0 / 6.0, 2.0 / 3.0, 1.0 / 6.0]),
        Point::new(vec![1.0 / 6.0, 1.0 / 6.0, 2.0 / 3.0]),
    ];
    // What the faulty process reports is up to it; all-zeros drags every
    // coordinate's trimmed minimum down to 1/6.
    let reported = {
        let mut s = honest.clone();
        s.push(Point::origin(3));
        PointMultiset::new(s)
    };
    let scalar_decision = per_dimension_decision(&reported, 1, ScalarPick::Lower);
    let honest_hull = ConvexHull::new(PointMultiset::new(honest.clone()));
    println!("scalar-per-dimension decision: {scalar_decision}");
    println!(
        "  sum of coordinates = {:.4} (a probability vector would sum to 1)",
        scalar_decision.coords().iter().sum::<f64>()
    );
    println!(
        "  inside the honest hull? {}",
        honest_hull.contains(&scalar_decision)
    );

    // The vector algorithm on the same scenario: n = 5 ≥ max(3f+1, (d+1)f+1).
    let honest_five = vec![
        honest[0].clone(),
        honest[1].clone(),
        honest[2].clone(),
        Point::new(vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]),
    ];
    let run = BvcSession::new(
        ProtocolKind::Exact,
        RunConfig::new(5, 1, 3)
            .honest_inputs(honest_five.clone())
            .adversary(ByzantineStrategy::FixedOutlier)
            .seed(1),
    )
    .expect("bound satisfied")
    .run();
    let bvc_decision = &run.decisions()[0];
    println!("exact BVC decision:            {bvc_decision}");
    println!(
        "  sum of coordinates = {:.4}",
        bvc_decision.coords().iter().sum::<f64>()
    );
    println!("  inside the honest hull? {}\n", run.verdict().validity);

    println!("== Random probability-vector workloads (d = 3, f = 1, 20 trials) ==");
    let mut workload = WorkloadGenerator::new(99);
    let trials = 20;
    let mut scalar_violations = 0;
    let mut bvc_violations = 0;
    for trial in 0..trials {
        let honest: Vec<Point> = workload.probability_vectors(4, 3).into_points();
        let hull = ConvexHull::new(PointMultiset::new(honest.clone()));
        // Scalar baseline applied to the honest inputs plus one adversarial
        // all-zero report.
        let mut with_fault = honest.clone();
        with_fault.push(Point::origin(3));
        let scalar = per_dimension_decision(&PointMultiset::new(with_fault), 1, ScalarPick::Lower);
        if !hull.contains(&scalar) {
            scalar_violations += 1;
        }
        // Exact BVC on the same honest inputs with an outlier adversary.
        let run = BvcSession::new(
            ProtocolKind::Exact,
            RunConfig::new(5, 1, 3)
                .honest_inputs(honest)
                .adversary(ByzantineStrategy::FixedOutlier)
                .seed(trial as u64),
        )
        .expect("bound satisfied")
        .run();
        if !run.verdict().validity {
            bvc_violations += 1;
        }
    }
    println!("vector-validity violations out of {trials} trials:");
    println!("  scalar per-dimension baseline: {scalar_violations}");
    println!("  exact BVC:                     {bvc_violations}");
    assert_eq!(bvc_violations, 0, "BVC must never violate validity");
    println!(
        "\nExact BVC keeps the aggregate inside the honest hull; the scalar baseline does not."
    );
}
