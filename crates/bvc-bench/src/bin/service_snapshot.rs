//! `service-snapshot` — the multi-shot consensus-service throughput gate.
//!
//! Runs a fixed matrix of `bvc-service` streams (thousands of queued
//! instances over persistent configurations, seeds cycling so the shared
//! Γ cache sees cross-instance repeats) and emits one
//! `bvc-perf-snapshot/v1` document, by convention `BENCH_service.json`,
//! that the existing `perf-compare` binary gates exactly like the
//! Γ-engine matrix.  Every row is a whole stream: `calls` is the queued
//! instance count, so `mean_us` is the per-decision latency and
//! `1e6 / mean_us` the stream's decisions/sec.
//!
//! ```text
//! cargo run --release -p bvc-bench --bin service-snapshot -- [--out BENCH_service.json]
//! ```
//!
//! Exit code 0 means every stream decided every instance without a
//! verdict violation *and* every shared-cache stream measured nonzero
//! cross-instance reuse; 1 means some stream failed either check
//! (timings are reported either way).
//!
//! The matrix is sized for CI's single-core wall-clock budget: the
//! n = 5 shapes run thousands of instances (≈ 1–2 ms each), the n = 9
//! restricted shapes run shorter streams because one d = 2 instance
//! costs hundreds of milliseconds even warm.

use bvc_core::{ByzantineStrategy, InstanceOverrides, ProtocolKind, RunConfig};
use bvc_geometry::{Point, WorkloadGenerator};
use bvc_service::{BvcService, CacheMode, MemorySink, ServiceConfig, ServiceStats};
use std::fmt::Write as _;
use std::process::ExitCode;

/// Byzantine rotation shared by every stream; its length (2) divides
/// every seed cycle in the matrix, so each seed repeat is an exact
/// configuration repeat and cross-instance Γ reuse is guaranteed by
/// construction.
const ROTATION: [ByzantineStrategy; 2] = [
    ByzantineStrategy::Equivocate,
    ByzantineStrategy::AntiConvergence,
];

struct Row {
    kind: &'static str,
    n: usize,
    f: usize,
    d: usize,
    detail: String,
    calls: usize,
    wall_ms: f64,
    ok: bool,
    /// Γ-cache hit rate of the stream (local + shared levels), in percent:
    /// the service-level fast path.  A drop here without a protocol change
    /// means instances stopped finding their safe-area evaluations cached.
    fast_path_pct: f64,
}

impl Row {
    fn mean_us(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.wall_ms * 1000.0 / self.calls as f64
        }
    }
}

/// One stream of the matrix: `instances` queued instances over a
/// persistent `(protocol, n, f, d, ε)` configuration, seeds cycling with
/// period `cycle`.
struct Stream {
    protocol: ProtocolKind,
    n: usize,
    f: usize,
    d: usize,
    epsilon: f64,
    instances: usize,
    cycle: usize,
    cache: CacheMode,
}

fn inputs_for_seed(n: usize, f: usize, d: usize, seed: u64) -> Vec<Point> {
    WorkloadGenerator::new(0x5EED_0000 ^ seed)
        .box_points(n - f, d, 0.0, 1.0)
        .into_points()
}

fn build_config(stream: &Stream) -> ServiceConfig {
    let template = RunConfig::new(stream.n, stream.f, stream.d)
        .epsilon(stream.epsilon)
        .honest_inputs(inputs_for_seed(stream.n, stream.f, stream.d, 0));
    let overrides = (0..stream.instances)
        .map(|i| {
            let seed = (i % stream.cycle) as u64;
            InstanceOverrides {
                seed,
                honest_inputs: Some(inputs_for_seed(stream.n, stream.f, stream.d, seed)),
                adversary: Some(ROTATION[i % ROTATION.len()]),
                ..InstanceOverrides::default()
            }
        })
        .collect();
    ServiceConfig::new(stream.protocol, template)
        .instances(overrides)
        .workers(4)
        .batch(64)
        .cache_mode(stream.cache)
        .label("service-snapshot")
}

fn run_stream(stream: &Stream) -> Row {
    let cache_label = match stream.cache {
        CacheMode::Shared => "shared",
        CacheMode::PerInstance => "cold",
    };
    let protocol_label = match stream.protocol {
        ProtocolKind::Exact => "exact",
        _ => "restricted-sync",
    };
    eprintln!(
        "service-snapshot: {protocol_label} n={} f={} d={} x{} (cache={cache_label})",
        stream.n, stream.f, stream.d, stream.instances
    );
    let service =
        BvcService::new(build_config(stream)).expect("matrix shapes satisfy the admission bounds");
    let mut sink = MemorySink::new();
    let stats: ServiceStats = service
        .run(&mut sink)
        .expect("the in-memory sink cannot fail");
    // A shared-cache stream that measures zero cross-instance reuse is a
    // correctness failure of the service (the seeds cycle by
    // construction), not just a slow run.
    let reuse_ok = match stream.cache {
        CacheMode::Shared => stats.cache.shared_hits > 0,
        CacheMode::PerInstance => stats.cache.shared_hits == 0,
    };
    Row {
        kind: "service_run",
        n: stream.n,
        f: stream.f,
        d: stream.d,
        detail: format!(
            "{protocol_label}, epsilon={}, instances={}, cycle={}, cache={cache_label}",
            stream.epsilon, stream.instances, stream.cycle
        ),
        calls: stream.instances,
        wall_ms: stats.wall_ms,
        ok: stats.violated == 0
            && stats.decided == stream.instances
            && sink.lines().len() == stream.instances
            && reuse_ok,
        fast_path_pct: 100.0 * stats.cache.hit_rate(),
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"bvc-perf-snapshot/v1\",\n");
    out.push_str("  \"description\": \"Multi-shot consensus-service matrix: queued instance streams over persistent configurations (wall clock, release build; mean_us is per-decision latency)\",\n");
    out.push_str("  \"workloads\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kind\": \"{}\", \"n\": {}, \"f\": {}, \"d\": {}, \"detail\": \"{}\", \"calls\": {}, \"wall_ms\": {:.3}, \"mean_us\": {:.1}, \"ok\": {}, \"fast_path_pct\": {:.1}}}",
            row.kind,
            row.n,
            row.f,
            row.d,
            json_escape(&row.detail),
            row.calls,
            row.wall_ms,
            row.mean_us(),
            row.ok,
            row.fast_path_pct
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let mut out_path = String::from("BENCH_service.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("usage: service-snapshot [--out <file>]");
                    std::process::exit(2);
                })
            }
            "--help" | "-h" => {
                eprintln!("usage: service-snapshot [--out <file>]");
                return ExitCode::from(2);
            }
            other => {
                eprintln!("service-snapshot: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    // Streams are ordered cheapest-first so a wall-clock timeout still
    // reports the bulk of the matrix.  The n = 9, d = 2 restricted shape
    // (the issue's acceptance shape) runs a short stream at a generous ε:
    // even warm, one instance costs hundreds of milliseconds on one core.
    let streams = [
        // Throughput rows: thousands of queued instances, n = 5.
        Stream {
            protocol: ProtocolKind::Exact,
            n: 5,
            f: 1,
            d: 2,
            epsilon: 0.1,
            instances: 2000,
            cycle: 100,
            cache: CacheMode::Shared,
        },
        Stream {
            protocol: ProtocolKind::RestrictedSync,
            n: 5,
            f: 1,
            d: 1,
            epsilon: 0.05,
            instances: 2000,
            cycle: 100,
            cache: CacheMode::Shared,
        },
        Stream {
            protocol: ProtocolKind::RestrictedSync,
            n: 5,
            f: 1,
            d: 2,
            epsilon: 0.1,
            instances: 2000,
            cycle: 100,
            cache: CacheMode::Shared,
        },
        // Cold-cache control: identical stream, isolated caches — the
        // mean_us gap against the row above is the cross-instance reuse
        // dividend.
        Stream {
            protocol: ProtocolKind::RestrictedSync,
            n: 5,
            f: 1,
            d: 2,
            epsilon: 0.1,
            instances: 500,
            cycle: 100,
            cache: CacheMode::PerInstance,
        },
        // Wider shapes, shorter streams.
        Stream {
            protocol: ProtocolKind::Exact,
            n: 7,
            f: 2,
            d: 2,
            epsilon: 0.1,
            instances: 1000,
            cycle: 50,
            cache: CacheMode::Shared,
        },
        Stream {
            protocol: ProtocolKind::RestrictedSync,
            n: 9,
            f: 2,
            d: 1,
            epsilon: 0.05,
            instances: 200,
            cycle: 50,
            cache: CacheMode::Shared,
        },
        Stream {
            protocol: ProtocolKind::RestrictedSync,
            n: 9,
            f: 2,
            d: 2,
            epsilon: 0.2,
            instances: 24,
            cycle: 12,
            cache: CacheMode::Shared,
        },
    ];
    let rows: Vec<Row> = streams.iter().map(run_stream).collect();

    let rendered = render(&rows);
    if let Err(e) = std::fs::write(&out_path, &rendered) {
        eprintln!("service-snapshot: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    print!("{rendered}");

    let total_ms: f64 = rows.iter().map(|r| r.wall_ms).sum();
    let total_calls: usize = rows.iter().map(|r| r.calls).sum();
    eprintln!(
        "service-snapshot: {total_calls} instances across {} streams in {:.1} ms",
        rows.len(),
        total_ms
    );
    if rows.iter().all(|r| r.ok) {
        ExitCode::SUCCESS
    } else {
        eprintln!("service-snapshot: some stream failed its correctness check");
        ExitCode::from(1)
    }
}
