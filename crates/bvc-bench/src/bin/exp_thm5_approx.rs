//! E4 — Theorem 5 (sufficiency): Approximate BVC at `n = (d+2)f + 1`.
//!
//! Runs the asynchronous algorithm at exactly the tight bound for a sweep of
//! `(d, f, ε)` and adversary strategies, under adversarial (but fair)
//! scheduling, and checks ε-agreement, validity, termination, and that the
//! number of rounds used matches the static budget
//! `1 + ⌈log_{1/(1−γ)}((U−ν)/ε)⌉` of Step 3.

use bvc_adversary::ByzantineStrategy;
use bvc_bench::{experiment_header, fmt, honest_workload, mark, Table};
use bvc_core::{BvcSession, ProtocolKind, RunConfig, Setting, UpdateRule};

fn main() {
    experiment_header(
        "E4: Theorem 5 sufficiency — Approximate BVC at the tight bound",
        "n = (d+2)f+1 suffices for asynchronous approximate BVC: ε-agreement, validity and \
         termination hold; the round budget is 1 + ceil(log_{1/(1-γ)}((U−ν)/ε))",
    );

    let mut table = Table::new(&[
        "d",
        "f",
        "n (tight)",
        "epsilon",
        "adversary",
        "ε-agreement",
        "validity",
        "termination",
        "round budget",
        "final spread",
        "msgs",
    ]);
    let adversaries = [
        ByzantineStrategy::FixedOutlier,
        ByzantineStrategy::Equivocate,
        ByzantineStrategy::AntiConvergence,
    ];
    let sweep = [(1usize, 1usize), (2, 1), (3, 1)];
    for &(d, f) in &sweep {
        let n = Setting::ApproxAsync.min_processes(d, f);
        for &eps in &[0.1, 0.02] {
            for (s, strategy) in adversaries.iter().enumerate() {
                let inputs = honest_workload(300 + (d * 13 + s) as u64, n - f, d);
                let run = BvcSession::new(
                    ProtocolKind::Approx,
                    RunConfig::new(n, f, d)
                        .honest_inputs(inputs)
                        .adversary(*strategy)
                        .epsilon(eps)
                        .update_rule(UpdateRule::WitnessOptimized)
                        .seed(11 + s as u64),
                )
                .expect("parameters satisfy the bound")
                .run();
                let verdict = run.verdict();
                table.row(&[
                    d.to_string(),
                    f.to_string(),
                    n.to_string(),
                    fmt(eps, 2),
                    strategy.name().to_string(),
                    mark(verdict.agreement),
                    mark(verdict.validity),
                    mark(verdict.termination),
                    run.round_budget().expect("approx budget").to_string(),
                    fmt(verdict.max_pairwise_distance, 6),
                    run.stats().messages_delivered.to_string(),
                ]);
            }
        }
    }
    table.print();
    println!();
    println!(
        "All configurations at the tight bound satisfy ε-agreement and validity, the constructive \
         half of Theorem 5. The final spread is far below ε in most runs: the (1−γ) contraction \
         bound is conservative, as expected from a worst-case analysis (see E5)."
    );
}
