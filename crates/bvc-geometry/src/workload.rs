//! Randomised input-vector workloads for tests, experiments and benchmarks.
//!
//! The paper motivates vector consensus with inputs that are points of a
//! convex feasible set — probability vectors (distributed optimisation /
//! Byzantine ML) and robot positions in a bounded region are the two examples
//! given in Section 1 and Section 3.2.  This module generates both families,
//! plus generic box-bounded inputs, from a seeded RNG so that every experiment
//! is reproducible.

use crate::multiset::PointMultiset;
use crate::point::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible generator of input-vector workloads.
#[derive(Debug)]
pub struct WorkloadGenerator {
    rng: StdRng,
}

impl WorkloadGenerator {
    /// Creates a generator from a seed; equal seeds produce equal workloads.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// `count` points drawn uniformly from the axis-aligned box
    /// `[lo, hi]^dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, `count == 0` or `lo > hi`.
    pub fn box_points(&mut self, count: usize, dim: usize, lo: f64, hi: f64) -> PointMultiset {
        assert!(dim > 0 && count > 0, "count and dim must be positive");
        assert!(lo <= hi, "lo must not exceed hi");
        let points = (0..count)
            .map(|_| {
                Point::new(
                    (0..dim)
                        .map(|_| self.rng.gen_range(lo..=hi))
                        .collect::<Vec<f64>>(),
                )
            })
            .collect();
        PointMultiset::new(points)
    }

    /// `count` probability vectors of dimension `dim` (non-negative entries
    /// summing to 1), drawn from a flat Dirichlet via exponential sampling.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `count == 0`.
    pub fn probability_vectors(&mut self, count: usize, dim: usize) -> PointMultiset {
        assert!(dim > 0 && count > 0, "count and dim must be positive");
        let points = (0..count)
            .map(|_| {
                let raw: Vec<f64> = (0..dim)
                    .map(|_| {
                        let u: f64 = self.rng.gen_range(1e-9..1.0);
                        -u.ln()
                    })
                    .collect();
                let total: f64 = raw.iter().sum();
                Point::new(raw.into_iter().map(|x| x / total).collect())
            })
            .collect();
        PointMultiset::new(points)
    }

    /// `count` robot positions inside the cube `[0, side]^3`, the mobile-robot
    /// gathering scenario from Section 3.2.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `side <= 0`.
    pub fn robot_positions(&mut self, count: usize, side: f64) -> PointMultiset {
        assert!(side > 0.0, "the operating region must have positive size");
        self.box_points(count, 3, 0.0, side)
    }

    /// `count` points clustered around `centre` with coordinates perturbed by
    /// at most `radius` (uniform).  Useful for workloads where honest inputs
    /// are close and an adversary tries to drag the decision away.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` or `radius < 0`.
    pub fn clustered(&mut self, count: usize, centre: &Point, radius: f64) -> PointMultiset {
        assert!(count > 0, "count must be positive");
        assert!(radius >= 0.0, "radius must be non-negative");
        let points = (0..count)
            .map(|_| {
                Point::new(
                    centre
                        .coords()
                        .iter()
                        .map(|&c| c + self.rng.gen_range(-radius..=radius))
                        .collect::<Vec<f64>>(),
                )
            })
            .collect();
        PointMultiset::new(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_reproducible() {
        let a = WorkloadGenerator::new(7).box_points(5, 3, -1.0, 1.0);
        let b = WorkloadGenerator::new(7).box_points(5, 3, -1.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadGenerator::new(1).box_points(5, 3, -1.0, 1.0);
        let b = WorkloadGenerator::new(2).box_points(5, 3, -1.0, 1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn box_points_respect_bounds() {
        let ms = WorkloadGenerator::new(3).box_points(20, 4, -2.0, 5.0);
        for p in ms.iter() {
            for &c in p.coords() {
                assert!((-2.0..=5.0).contains(&c));
            }
        }
    }

    #[test]
    fn probability_vectors_sum_to_one_and_are_nonnegative() {
        let ms = WorkloadGenerator::new(11).probability_vectors(10, 5);
        for p in ms.iter() {
            let total: f64 = p.coords().iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(p.coords().iter().all(|&c| c >= 0.0));
        }
    }

    #[test]
    fn robot_positions_are_three_dimensional() {
        let ms = WorkloadGenerator::new(5).robot_positions(4, 10.0);
        assert_eq!(ms.dim(), 3);
        for p in ms.iter() {
            assert!(p.coords().iter().all(|&c| (0.0..=10.0).contains(&c)));
        }
    }

    #[test]
    fn clustered_points_stay_within_radius() {
        let centre = Point::new(vec![1.0, 2.0]);
        let ms = WorkloadGenerator::new(9).clustered(8, &centre, 0.25);
        for p in ms.iter() {
            assert!(p.linf_distance(&centre) <= 0.25 + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_count_panics() {
        let _ = WorkloadGenerator::new(0).box_points(0, 2, 0.0, 1.0);
    }
}
