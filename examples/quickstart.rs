//! Quickstart: exact Byzantine vector consensus under an equivocation attack,
//! through the `BvcSession` API.
//!
//! Seven processes hold 3-dimensional inputs (probability vectors — the
//! paper's motivating workload); one of them is Byzantine and tells every
//! peer a different story.  The Exact BVC algorithm (Section 2.2 of
//! Vaidya & Garg, PODC 2013) still makes all honest processes agree on a
//! single vector inside the convex hull of the honest inputs.
//!
//! The session API is the canonical entry point: build one [`RunConfig`],
//! bind it to a [`ProtocolKind`], and read the unified [`RunReport`] — the
//! same three steps drive all five protocols (swap `ProtocolKind::Exact`
//! for `Approx`, `RestrictedSync`, `RestrictedAsync` or `Iterative`).
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bvc::adversary::ByzantineStrategy;
use bvc::core::{BvcSession, ProtocolKind, RunConfig};
use bvc::geometry::Point;

fn main() {
    // n = 7 processes, f = 1 Byzantine, d = 3 dimensions.
    // The paper's bound: n >= max(3f+1, (d+1)f+1) = 5, so 7 gives slack.
    let honest_inputs = vec![
        Point::new(vec![0.70, 0.20, 0.10]),
        Point::new(vec![0.10, 0.80, 0.10]),
        Point::new(vec![0.20, 0.20, 0.60]),
        Point::new(vec![0.40, 0.30, 0.30]),
        Point::new(vec![0.25, 0.50, 0.25]),
        Point::new(vec![0.33, 0.33, 0.34]),
    ];

    println!("Exact Byzantine vector consensus (n = 7, f = 1, d = 3)");
    println!("honest inputs:");
    for (i, input) in honest_inputs.iter().enumerate() {
        println!("  p{} -> {input}", i + 1);
    }
    println!("p7 is Byzantine and equivocates (different vector to every peer)\n");

    // One protocol-agnostic config; the protocol is picked at dispatch.
    let config = RunConfig::new(7, 1, 3)
        .honest_inputs(honest_inputs)
        .adversary(ByzantineStrategy::Equivocate)
        .seed(2013);
    let report = BvcSession::new(ProtocolKind::Exact, config)
        .expect("parameters satisfy the resilience bound")
        .run();

    println!(
        "decision of every honest process: {}",
        report.decisions()[0]
    );
    let verdict = report.verdict();
    println!("agreement:   {}", verdict.agreement);
    println!("validity:    {}", verdict.validity);
    println!("termination: {}", verdict.termination);
    println!(
        "rounds: {}   messages delivered: {}",
        report.rounds(),
        report.stats().messages_delivered
    );

    assert!(
        verdict.all_hold(),
        "the algorithm must satisfy all conditions"
    );
    println!("\nAll three correctness conditions hold, as Theorem 3 promises.");
}
