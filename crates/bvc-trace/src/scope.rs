//! Thread-local trace scopes: the zero-cost-when-off emission point.
//!
//! Instrumented code calls [`emit`] with a closure; when no scope is
//! installed on the current thread (the default), the call is one
//! thread-local read and a branch — the event is never constructed.  A
//! scope is installed with [`install`], which returns an RAII guard; the
//! installing layer (a bin's `--trace` flag, the service's per-instance
//! worker loop, a spawned executor thread) decides the slot number that
//! prefixes the logical sort key.

use crate::event::TraceEvent;
use crate::tracer::TraceHandle;
use std::cell::RefCell;

struct ThreadScope {
    handle: TraceHandle,
    slot: u32,
    seq: u64,
    token: u64,
}

/// Process-unique install counter backing [`scope_token`].
static NEXT_TOKEN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

thread_local! {
    static SCOPE: RefCell<Option<ThreadScope>> = const { RefCell::new(None) };
}

/// Uninstalls the scope when dropped, restoring the previous one (scopes
/// nest: the service installs per-instance scopes inside a session scope).
pub struct ScopeGuard {
    previous: Option<ThreadScope>,
    // Keep the guard from being Send: it must drop on the installing thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|scope| {
            *scope.borrow_mut() = self.previous.take();
        });
    }
}

/// Installs `handle` as the current thread's trace sink under slot `slot`.
/// The per-slot sequence number restarts at 0 — chunked consumers (the
/// service's per-instance traces) rely on that for byte-identity across
/// worker counts.
pub fn install(handle: TraceHandle, slot: u32) -> ScopeGuard {
    let previous = SCOPE.with(|scope| {
        scope.borrow_mut().replace(ThreadScope {
            handle,
            slot,
            seq: 0,
            token: NEXT_TOKEN.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        })
    });
    ScopeGuard {
        previous,
        _not_send: std::marker::PhantomData,
    }
}

/// `true` when a scope is installed on this thread (events will be
/// constructed and recorded).
pub fn is_active() -> bool {
    SCOPE.with(|scope| scope.borrow().is_some())
}

/// Emits one event to the current scope, if any.  The closure is not
/// evaluated when tracing is off.
pub fn emit(event: impl FnOnce() -> TraceEvent) {
    SCOPE.with(|scope| {
        let mut borrow = scope.borrow_mut();
        if let Some(active) = borrow.as_mut() {
            let seq = active.seq;
            active.seq += 1;
            let (handle, slot) = (active.handle.clone(), active.slot);
            // Record outside the RefCell borrow: serializing the event may
            // itself emit (a traced Γ query inside a traced round) and
            // re-enter this thread-local.
            drop(borrow);
            handle.record(slot, seq, &event());
        }
    });
}

/// The current scope's handle, for layers that need to measure timing or
/// hand the handle to a thread they spawn (the threaded executor).
pub fn current_handle() -> Option<TraceHandle> {
    SCOPE.with(|scope| scope.borrow().as_ref().map(|s| s.handle.clone()))
}

/// The current scope's slot, if a scope is installed.
pub fn current_slot() -> Option<u32> {
    SCOPE.with(|scope| scope.borrow().as_ref().map(|s| s.slot))
}

/// A process-unique token identifying the current scope *installation* (two
/// installs of the same slot get different tokens).  Instrumented layers
/// whose physical state outlives a logical unit of work — the thread-local
/// simplex workspace — compare tokens to report per-scope facts instead of
/// per-thread ones, keeping traces byte-identical across worker counts and
/// across repeated traced runs in one process.  The token never appears in
/// the trace itself.
pub fn scope_token() -> Option<u64> {
    SCOPE.with(|scope| scope.borrow().as_ref().map(|s| s.token))
}

/// Records a wall-time measurement on the current scope's timing channel,
/// if a scope with an open timing channel is installed.
pub fn emit_timing(label: &str, micros: u128) {
    if let Some(handle) = current_handle() {
        handle.record_timing(label, micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_scope_never_runs_the_closure() {
        let mut ran = false;
        emit(|| {
            ran = true;
            TraceEvent::RoundOpen { round: 1 }
        });
        assert!(!ran);
        assert!(!is_active());
    }

    #[test]
    fn scoped_events_are_sequenced_and_guard_restores() {
        let handle = TraceHandle::jsonl();
        {
            let _guard = install(handle.clone(), 0);
            assert!(is_active());
            emit(|| TraceEvent::RoundOpen { round: 1 });
            emit(|| TraceEvent::RoundClose {
                round: 1,
                spread: Some(0.5),
            });
        }
        assert!(!is_active());
        let lines = handle.finish();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\": 0"));
        assert!(lines[1].contains("\"seq\": 1"));
    }

    #[test]
    fn scopes_nest_and_inner_seq_restarts() {
        let outer = TraceHandle::jsonl();
        let inner = TraceHandle::jsonl();
        let _outer_guard = install(outer.clone(), 0);
        emit(|| TraceEvent::RoundOpen { round: 1 });
        {
            let _inner_guard = install(inner.clone(), 0);
            emit(|| TraceEvent::RoundOpen { round: 99 });
        }
        emit(|| TraceEvent::RoundOpen { round: 2 });
        let outer_lines = outer.finish();
        assert_eq!(outer_lines.len(), 2);
        assert!(outer_lines[1].contains("\"seq\": 1"));
        let inner_lines = inner.finish();
        assert_eq!(inner_lines.len(), 1);
        assert!(inner_lines[0].contains("\"seq\": 0"), "inner restarts at 0");
    }
}
