//! Byzantine broadcast primitives for the BVC reproduction.
//!
//! The paper uses two communication primitives as cited black boxes; this
//! crate implements both from scratch:
//!
//! * **Synchronous Byzantine broadcast** (`n ≥ 3f + 1`) — used by Step 1 of
//!   the Exact BVC algorithm.  Built as the classical reduction "source sends,
//!   then everyone runs EIG consensus on what they received":
//!   [`EigTree`] implements the consensus core, [`BroadcastInstance`] the
//!   per-source broadcast state machine (`f + 2` synchronous rounds).
//! * **Asynchronous reliable broadcast** (`n ≥ 3f + 1`) — the first building
//!   block of the AAD-style exchange used by the Approximate BVC algorithm.
//!   [`ReliableBroadcastInstance`] implements Bracha-style echo broadcast with
//!   consistency, validity and totality.
//!
//! All types here are pure per-process state machines: they produce and
//! consume protocol messages but perform no I/O, so they can be driven by the
//! synchronous round executor, the asynchronous simulator or the threaded
//! runtime from `bvc-net`, with Byzantine behaviours injected by `bvc-adversary`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast;
pub mod eig;
pub mod reliable;

pub use broadcast::{BroadcastInstance, BroadcastMessage};
pub use eig::{strict_majority, EigTree, Label};
pub use reliable::{RbMessage, RbStep, ReliableBroadcastInstance};
