//! A guided walkthrough of the paper's two impossibility constructions.
//!
//! The sufficiency sides of Theorems 1 and 4 are demonstrated by the other
//! examples (the algorithms simply work at the bounds).  This example walks
//! through the *necessity* sides interactively: it builds the adversarial
//! input configurations used in the proofs and shows, numerically, why no
//! algorithm — ours or anyone else's — can succeed with fewer processes.
//!
//! Run with:
//!
//! ```text
//! cargo run --example impossibility_walkthrough
//! ```

use bvc::core::{theorem1_evidence, theorem1_inputs, theorem4_evidence, theorem4_inputs, Setting};
use bvc::geometry::{leave_one_out_intersection, ConvexHull, PointMultiset};

fn main() {
    println!("====================================================================");
    println!(" Theorem 1: why n = d+1 processes cannot solve Exact BVC (f = 1)");
    println!("====================================================================\n");
    let d = 3;
    let inputs = theorem1_inputs(d);
    println!(
        "d = {d}; the adversarial input configuration (n = d+1 = {} processes):",
        d + 1
    );
    for (i, p) in inputs.iter().enumerate() {
        println!("  x{} = {p}", i + 1);
    }
    println!();
    println!("With f = 1, no process knows which single process might be faulty, so a valid");
    println!("decision must lie in the convex hull of EVERY subset of n-1 = {d} inputs.");
    println!("Checking each leave-one-out hull and their intersection:");
    for drop in 0..inputs.len() {
        let keep: Vec<usize> = (0..inputs.len()).filter(|&k| k != drop).collect();
        let hull = ConvexHull::new(inputs.select(&keep));
        // For the basis construction, dropping x_i (i <= d) forces coordinate
        // i to zero in the remaining hull.
        println!(
            "  drop x{}: hull of {} points, contains the origin? {}",
            drop + 1,
            keep.len(),
            hull.contains(&bvc::geometry::Point::origin(d))
        );
    }
    match leave_one_out_intersection(&inputs) {
        None => println!("\n=> the intersection of all leave-one-out hulls is EMPTY."),
        Some(p) => println!("\n=> unexpected common point {p} (this should not happen)"),
    }
    let evidence = theorem1_evidence(d);
    println!(
        "   theorem1_evidence(d = {d}): intersection_empty = {}",
        evidence.intersection_empty
    );
    println!(
        "   Exact BVC therefore needs n >= (d+1)f + 1 = {} processes (Theorem 1); our runner\n   enforces exactly that bound: minimum n = {}.",
        d + 2,
        Setting::ExactSync.min_processes(d, 1)
    );

    println!();
    println!("====================================================================");
    println!(" Theorem 4: why n = d+2 processes cannot solve approximate BVC");
    println!("====================================================================\n");
    let d = 2;
    let eps = 0.05;
    let inputs = theorem4_inputs(d, eps);
    println!(
        "d = {d}, epsilon = {eps}; inputs (n = d+2 = {} processes):",
        d + 2
    );
    for (i, p) in inputs.iter().enumerate() {
        println!("  x{} = {p}", i + 1);
    }
    println!();
    println!(
        "Process p{} never takes a step.  Each p_i (i <= d+1) must therefore decide",
        d + 2
    );
    println!("without hearing from it, and without trusting any single other process — which");
    println!("pins its decision inside the intersection of the hulls X_i^j of equation (6).");
    let evidence = theorem4_evidence(d, eps);
    for (i, forced) in evidence.forced_to_own_input.iter().enumerate() {
        println!(
            "  p{}: admissible region collapses to its own input x{}? {}",
            i + 1,
            i + 1,
            forced
        );
    }
    println!(
        "\n=> forced decisions are {:.3} apart in the worst coordinate, but epsilon-agreement\n   allows only {eps}; violation = {}.",
        evidence.max_pairwise_distance,
        evidence.violates_epsilon_agreement()
    );
    println!(
        "   Approximate BVC therefore needs n >= (d+2)f + 1 = {} processes (Theorem 4); the\n   runner's enforced minimum is {}.",
        (d + 2) + 1,
        Setting::ApproxAsync.min_processes(d, 1)
    );

    // Sanity: the hull of the honest inputs of the Theorem 4 construction is
    // genuinely d-dimensional (the basis points are affinely independent), so
    // the collapse is not an artefact of a degenerate input set.
    let hull = ConvexHull::new(PointMultiset::new(inputs.points()[..=d].to_vec()));
    assert!(hull.contains(&bvc::geometry::Point::uniform(d, eps)));
    println!("\nBoth constructions verified numerically — the bounds are tight on both sides.");
}
