//! System parameters and the paper's resilience bounds.
//!
//! [`BvcConfig`] bundles the parameters every algorithm needs — the number of
//! processes `n`, the fault bound `f`, the dimension `d`, the agreement
//! parameter `ε` and the a-priori value bounds `ν ≤ x ≤ U` assumed by the
//! termination rule of Section 3.2 — and knows the paper's four tight
//! resilience bounds:
//!
//! | setting                               | bound                          |
//! |---------------------------------------|--------------------------------|
//! | Exact BVC, synchronous (Thm 1/3)      | `n ≥ max(3f+1, (d+1)f+1)`      |
//! | Approximate BVC, asynchronous (Thm 4/5)| `n ≥ (d+2)f+1`                |
//! | Restricted rounds, synchronous (Thm 6)| `n ≥ (d+2)f+1`                 |
//! | Restricted rounds, asynchronous (Thm 6)| `n ≥ (d+4)f+1`                |

use std::fmt;

/// Errors produced by configuration validation and the high-level runners.
#[derive(Debug, Clone, PartialEq)]
pub enum BvcError {
    /// The number of processes is below the tight bound for the requested
    /// algorithm.
    InsufficientProcesses {
        /// The algorithm/setting whose bound is violated.
        setting: Setting,
        /// Number of processes required by the paper's bound.
        required: usize,
        /// Number of processes actually configured.
        actual: usize,
    },
    /// A parameter is structurally invalid (zero dimension, `ε ≤ 0`, bad
    /// bounds, wrong number of inputs, …).
    InvalidParameter(String),
}

impl fmt::Display for BvcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BvcError::InsufficientProcesses {
                setting,
                required,
                actual,
            } => write!(
                f,
                "{setting} requires n >= {required} processes, but only {actual} were configured"
            ),
            BvcError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for BvcError {}

/// The four algorithm settings whose resilience bounds the paper establishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Setting {
    /// Exact BVC in a synchronous system (Theorems 1 and 3).
    ExactSync,
    /// Approximate BVC in an asynchronous system (Theorems 4 and 5).
    ApproxAsync,
    /// Restricted-round approximate BVC, synchronous (Theorem 6).
    RestrictedSync,
    /// Restricted-round approximate BVC, asynchronous (Theorem 6).
    RestrictedAsync,
}

impl Setting {
    /// The minimum `n` the paper proves necessary and sufficient for this
    /// setting with the given `d` and `f`.
    pub fn min_processes(self, d: usize, f: usize) -> usize {
        match self {
            Setting::ExactSync => (3 * f + 1).max((d + 1) * f + 1),
            Setting::ApproxAsync => (d + 2) * f + 1,
            Setting::RestrictedSync => (d + 2) * f + 1,
            Setting::RestrictedAsync => (d + 4) * f + 1,
        }
    }
}

impl fmt::Display for Setting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Setting::ExactSync => "exact synchronous BVC",
            Setting::ApproxAsync => "approximate asynchronous BVC",
            Setting::RestrictedSync => "restricted-round synchronous BVC",
            Setting::RestrictedAsync => "restricted-round asynchronous BVC",
        };
        write!(f, "{name}")
    }
}

/// System configuration shared by all algorithms in this crate.
#[derive(Debug, Clone, PartialEq)]
pub struct BvcConfig {
    /// Total number of processes `n`.
    pub n: usize,
    /// Maximum number of Byzantine processes `f`.
    pub f: usize,
    /// Dimension `d` of input and decision vectors.
    pub d: usize,
    /// ε of the ε-agreement condition (approximate algorithms only).
    pub epsilon: f64,
    /// A-priori lower bound `ν` on every input coordinate (Section 3.2).
    pub lower_bound: f64,
    /// A-priori upper bound `U` on every input coordinate (Section 3.2).
    pub upper_bound: f64,
}

impl BvcConfig {
    /// Creates a configuration with the default agreement parameters
    /// (`ε = 0.01`, value bounds `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns [`BvcError::InvalidParameter`] if `n == 0`, `d == 0` or
    /// `f >= n`.
    pub fn new(n: usize, f: usize, d: usize) -> Result<Self, BvcError> {
        let config = Self {
            n,
            f,
            d,
            epsilon: 0.01,
            lower_bound: 0.0,
            upper_bound: 1.0,
        };
        config.validate_structure()?;
        Ok(config)
    }

    /// Sets the ε of ε-agreement.
    ///
    /// # Errors
    ///
    /// Returns [`BvcError::InvalidParameter`] if `epsilon <= 0` or not finite.
    pub fn with_epsilon(mut self, epsilon: f64) -> Result<Self, BvcError> {
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(BvcError::InvalidParameter(format!(
                "epsilon must be positive and finite, got {epsilon}"
            )));
        }
        self.epsilon = epsilon;
        Ok(self)
    }

    /// Sets the a-priori value bounds `[ν, U]`.
    ///
    /// # Errors
    ///
    /// Returns [`BvcError::InvalidParameter`] if the bounds are not finite or
    /// `lower >= upper`.
    pub fn with_value_bounds(mut self, lower: f64, upper: f64) -> Result<Self, BvcError> {
        if !(lower.is_finite() && upper.is_finite() && lower < upper) {
            return Err(BvcError::InvalidParameter(format!(
                "value bounds must be finite with lower < upper, got [{lower}, {upper}]"
            )));
        }
        self.lower_bound = lower;
        self.upper_bound = upper;
        Ok(self)
    }

    fn validate_structure(&self) -> Result<(), BvcError> {
        if self.n == 0 {
            return Err(BvcError::InvalidParameter("n must be positive".into()));
        }
        if self.d == 0 {
            return Err(BvcError::InvalidParameter("d must be positive".into()));
        }
        if self.f >= self.n {
            return Err(BvcError::InvalidParameter(format!(
                "f = {} must be smaller than n = {}",
                self.f, self.n
            )));
        }
        Ok(())
    }

    /// Number of non-faulty processes assumed by the runners (`n − f`).
    pub fn honest_count(&self) -> usize {
        self.n - self.f
    }

    /// Checks the resilience bound for `setting`.
    ///
    /// # Errors
    ///
    /// Returns [`BvcError::InsufficientProcesses`] when `n` is below the
    /// paper's bound for `setting`.
    pub fn require(&self, setting: Setting) -> Result<(), BvcError> {
        let required = setting.min_processes(self.d, self.f);
        if self.n < required {
            return Err(BvcError::InsufficientProcesses {
                setting,
                required,
                actual: self.n,
            });
        }
        Ok(())
    }

    /// Returns `true` when `n` meets the bound for `setting`.
    pub fn satisfies(&self, setting: Setting) -> bool {
        self.require(setting).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimum_process_counts_match_the_paper() {
        // d = 1 collapses to the scalar bounds.
        assert_eq!(Setting::ExactSync.min_processes(1, 1), 4);
        assert_eq!(Setting::ApproxAsync.min_processes(1, 1), 4);
        // d = 3, f = 1: exact needs max(4, 5) = 5; approx needs 6.
        assert_eq!(Setting::ExactSync.min_processes(3, 1), 5);
        assert_eq!(Setting::ApproxAsync.min_processes(3, 1), 6);
        // d = 2, f = 2: exact max(7, 7) = 7; approx 9; restricted async 13.
        assert_eq!(Setting::ExactSync.min_processes(2, 2), 7);
        assert_eq!(Setting::ApproxAsync.min_processes(2, 2), 9);
        assert_eq!(Setting::RestrictedSync.min_processes(2, 2), 9);
        assert_eq!(Setting::RestrictedAsync.min_processes(2, 2), 13);
        // Small d keeps the 3f + 1 term active for exact consensus.
        assert_eq!(Setting::ExactSync.min_processes(1, 3), 10);
    }

    #[test]
    fn config_validation_rejects_bad_shapes() {
        assert!(BvcConfig::new(0, 0, 1).is_err());
        assert!(BvcConfig::new(4, 4, 1).is_err());
        assert!(BvcConfig::new(4, 1, 0).is_err());
        assert!(BvcConfig::new(4, 1, 2).is_ok());
    }

    #[test]
    fn epsilon_and_bounds_validation() {
        let config = BvcConfig::new(6, 1, 2).unwrap();
        assert!(config.clone().with_epsilon(0.0).is_err());
        assert!(config.clone().with_epsilon(-1.0).is_err());
        assert!(config.clone().with_epsilon(0.5).is_ok());
        assert!(config.clone().with_value_bounds(1.0, 1.0).is_err());
        assert!(config.clone().with_value_bounds(0.0, f64::NAN).is_err());
        assert!(config.with_value_bounds(-5.0, 5.0).is_ok());
    }

    #[test]
    fn require_reports_the_tight_bound() {
        let config = BvcConfig::new(5, 1, 3).unwrap();
        assert!(config.satisfies(Setting::ExactSync));
        let err = config.require(Setting::ApproxAsync).unwrap_err();
        match err {
            BvcError::InsufficientProcesses {
                required, actual, ..
            } => {
                assert_eq!(required, 6);
                assert_eq!(actual, 5);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let config = BvcConfig::new(4, 1, 3).unwrap();
        let err = config.require(Setting::RestrictedAsync).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("restricted-round asynchronous"));
        assert!(text.contains("8"));
        assert!(text.contains("4"));
    }

    #[test]
    fn honest_count() {
        let config = BvcConfig::new(7, 2, 2).unwrap();
        assert_eq!(config.honest_count(), 5);
    }

    #[test]
    fn f_zero_is_always_feasible() {
        let config = BvcConfig::new(2, 0, 5).unwrap();
        assert!(config.satisfies(Setting::ExactSync));
        assert!(config.satisfies(Setting::ApproxAsync));
        assert!(config.satisfies(Setting::RestrictedAsync));
    }
}
