//! Genome evaluation and the search objective.
//!
//! One evaluation = one deterministic scenario run.  The score rewards, in
//! order of magnitude: an outright **genuine** verdict violation (the search
//! target), then generic *danger heuristics* that give hill-climbing a
//! gradient toward one — operating below the strict resource bound under a
//! relaxed validity mode, weaker relaxations (smaller α), larger decision
//! spread relative to ε, and longer runs.  A violation only counts as
//! genuine when nothing excused it up front: the resource check was
//! satisfied, the substrate was declared solvable, and no drop fault broke
//! the reliable-channel assumption.

use crate::genome::{ChaosGenome, ValidityGene};
use bvc_core::Setting;
use bvc_scenario::{run_scenario, Protocol, ScenarioOutcome};

/// Score assigned to any genuine violation, dwarfing every heuristic term.
pub const VIOLATION_SCORE: f64 = 1e6;

/// The outcome of evaluating one genome.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The scenario outcome, when the instance ran (`None` ⇒ rejected at
    /// schema parse or admission).
    pub outcome: Option<ScenarioOutcome>,
    /// The rejection message, when it did not.
    pub rejected: Option<String>,
    /// Whether the run is a genuine violation (unexcused failed verdict).
    pub violation: bool,
    /// The objective score (higher = more interesting to the search).
    pub score: f64,
}

impl Evaluation {
    /// The violated-verdict flags `(agreement, validity, termination)`,
    /// used by the shrinker to check a reduction preserves the *same*
    /// violation.  All-true when the instance was rejected.
    pub fn verdict_flags(&self) -> (bool, bool, bool) {
        match &self.outcome {
            Some(o) => (
                o.verdict.agreement,
                o.verdict.validity,
                o.verdict.termination,
            ),
            None => (true, true, true),
        }
    }
}

/// The strict resource bound of the source paper for this protocol at full
/// dimension — the line below which only a relaxed validity mode admits a
/// run, and where the relaxed decision rule carries all the risk.
pub fn strict_bound(protocol: Protocol, d: usize, f: usize) -> usize {
    match protocol {
        Protocol::Exact => Setting::ExactSync.min_processes(d, f),
        Protocol::Approx => Setting::ApproxAsync.min_processes(d, f),
        Protocol::RestrictedSync => Setting::RestrictedSync.min_processes(d, f),
        Protocol::RestrictedAsync => Setting::RestrictedAsync.min_processes(d, f),
        // The iterative protocol's resource signal is the topology
        // sufficiency check, not an n-bound; the complete graphs the search
        // generates always pass it.
        Protocol::Iterative => 0,
        // The directed kinds are governed by their graph condition plus a
        // hard model floor that admission enforces outright — below it the
        // run is rejected regardless of validity mode, so the floor is the
        // strict line here too.
        Protocol::DirectedExact => (3 * f + 1).max((d + 1) * f + 1),
        Protocol::DirectedExactLb => (2 * f + 1).max((d + 1) * f + 1),
    }
}

/// Runs one genome through the scenario runner and scores it.
pub fn evaluate(genome: &ChaosGenome) -> Evaluation {
    let spec = match genome.to_spec() {
        Ok(spec) => spec,
        Err(e) => return rejected(e.to_string()),
    };
    let outcome = match run_scenario(&spec, genome.seed, spec.strategy, spec.policy.clone()) {
        Ok(outcome) => outcome,
        Err(e) => return rejected(e.to_string()),
    };

    let drop_excused = outcome.faults.contains(&"drop");
    let expected_unsolvable = outcome
        .topology
        .as_ref()
        .is_some_and(|t| !t.expected_solvable)
        || outcome.validity.as_ref().is_some_and(|v| !v.satisfied);
    let violation = !outcome.verdict.all_hold() && !expected_unsolvable && !drop_excused;

    let score = if violation {
        VIOLATION_SCORE
            + outcome.verdict.max_pairwise_distance.max(0.0)
            + outcome.rounds as f64 * 1e-3
    } else {
        let mut score = 0.0;
        // Decision spread relative to ε: how close an ε-agreement run came
        // to disagreeing (exact runs that hold have zero spread).
        if let Some(epsilon) = outcome.epsilon {
            if epsilon > 0.0 && outcome.verdict.max_pairwise_distance.is_finite() {
                score += 10.0 * (outcome.verdict.max_pairwise_distance / epsilon).clamp(0.0, 1.0);
            }
        }
        // Longer runs sit closer to the termination cliff.
        score += (outcome.rounds as f64).min(1e4) * 1e-3;
        if expected_unsolvable {
            // Below even the relaxed bound (or on an insufficient
            // topology): failures here are anticipated, never genuine —
            // push the search back toward admissible-but-risky territory.
            score -= 50.0;
        } else if genome.n < strict_bound(genome.protocol, genome.d, genome.f) {
            // Admitted only by a relaxed mode: the regime where the relaxed
            // decision rule is load-bearing.
            score += 25.0;
        }
        // Weaker relaxations are riskier: the dilated safe area Γ_α shrinks
        // monotonically as α does.
        if let ValidityGene::Alpha(alpha) = genome.validity {
            score += 10.0 / (1.0 + alpha);
        }
        score
    };

    Evaluation {
        outcome: Some(outcome),
        rejected: None,
        violation,
        score,
    }
}

fn rejected(message: String) -> Evaluation {
    Evaluation {
        outcome: None,
        rejected: Some(message),
        violation: false,
        score: f64::NEG_INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn base_genome() -> ChaosGenome {
        ChaosGenome {
            protocol: Protocol::Exact,
            n: 4,
            f: 1,
            d: 1,
            epsilon: 0.1,
            seed: 0,
            points: vec![vec![0.2], vec![0.5], vec![0.8]],
            strategy: "equivocate".to_string(),
            validity: ValidityGene::Strict,
            topology: None,
            faults: Vec::new(),
            round_robin: false,
            max_steps: 200_000,
        }
    }

    #[test]
    fn a_passing_run_scores_low_and_is_not_a_violation() {
        let eval = evaluate(&base_genome());
        assert!(!eval.violation);
        assert!(eval.rejected.is_none());
        assert!(eval.score < VIOLATION_SCORE);
        assert_eq!(eval.verdict_flags(), (true, true, true));
    }

    #[test]
    fn an_inadmissible_genome_is_rejected_with_minus_infinity() {
        let mut g = base_genome();
        g.n = 3; // below the exact strict bound 3f+1 = 4
        g.fix_points(&mut StdRng::seed_from_u64(0));
        let eval = evaluate(&g);
        assert!(eval.rejected.is_some());
        assert_eq!(eval.score, f64::NEG_INFINITY);
    }

    #[test]
    fn below_strict_bound_relaxed_runs_earn_the_boundary_bonus() {
        // Exact at d = 3, f = 1: strict bound max(3f+1, (d+1)f+1) = 5; the
        // α-relaxed family bound is 3f+1 = 4, so n = 4 is admitted only by
        // the relaxation — exactly the risky regime the bonus rewards.
        let mut g = base_genome();
        g.d = 3;
        g.n = 4;
        g.validity = ValidityGene::Alpha(3.0);
        g.fix_points(&mut StdRng::seed_from_u64(7));
        let eval = evaluate(&g);
        assert!(eval.rejected.is_none(), "relaxed admission must hold");
        if !eval.violation {
            assert!(eval.score >= 25.0, "boundary bonus missing: {}", eval.score);
        }
    }
}
