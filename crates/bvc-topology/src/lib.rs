//! Directed communication topologies for Byzantine vector consensus.
//!
//! The source paper assumes a **complete** communication graph; the follow-up
//! *Iterative Byzantine Vector Consensus in Incomplete Graphs* (Vaidya 2013,
//! arXiv:1307.2483) asks when consensus survives on a graph with *declared*
//! adjacency, building on the partition conditions of *Byzantine Consensus in
//! Directed Graphs* (Tseng & Vaidya, arXiv:1208.5075).  This crate owns that
//! substrate:
//!
//! * [`Topology`] — a directed adjacency relation over `n` processes, with
//!   complete / ring / torus / random-regular / explicit constructors and
//!   in-/out-neighbor iteration.  The loopback link `i → i` always exists, so
//!   a process can deliver to itself on any topology.
//! * [`conditions`] — graph-condition checkers: strong connectivity, the
//!   iterative-BVC sufficiency condition, and the exact directed-consensus
//!   conditions under point-to-point (arXiv:1208.5075) and local-broadcast
//!   (arXiv:1911.07298) delivery, all decided by one cut-based closed-set
//!   engine with witness extraction, so a scenario can be flagged as
//!   *expected-unsolvable* up front.
//! * [`TopologySpec`] — a declarative description of a topology family,
//!   materialised deterministically from the scenario seed (the
//!   random-regular family is a seeded construction; everything else is
//!   seed-independent).
//!
//! # Example
//!
//! ```
//! use bvc_topology::{Sufficiency, Topology};
//!
//! let ring = Topology::ring(6);
//! assert_eq!(ring.out_neighbors(0), &[1, 5]);
//! assert!(ring.is_strongly_connected());
//! // A ring cannot tolerate even one Byzantine process iteratively…
//! assert!(matches!(ring.iterative_sufficiency(1, 1), Sufficiency::Violated(_)));
//! // …but the complete graph on 6 nodes can (d = 1).
//! let complete = Topology::complete(6);
//! assert!(matches!(complete.iterative_sufficiency(1, 1), Sufficiency::Satisfied));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conditions;
pub mod graph;
pub mod spec;

pub use conditions::{PartitionWitness, Sufficiency};
pub use graph::{Topology, TopologyError};
pub use spec::TopologySpec;
