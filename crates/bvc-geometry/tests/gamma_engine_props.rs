//! Property tests pinning the Γ-engine fast paths to the naive all-LPs
//! formulation of equation (1): the `d = 1` closed form, the lazy
//! active-set path, and the shared cache must agree with materialising
//! every `(|Y|−f)`-subset hull and solving the monolithic joint LP —
//! on membership, on emptiness, and on chosen-point determinism.

use bvc_geometry::{
    gamma_contains, gamma_is_empty, gamma_point, ConvexHull, GammaCache, Point, PointMultiset,
};
use proptest::prelude::*;

fn points(len: usize, d: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(
        prop::collection::vec(-5.0f64..5.0, d).prop_map(Point::new),
        len,
    )
}

/// The naive reference: every subset hull materialised up front.
fn naive_hulls(y: &PointMultiset, f: usize) -> Vec<ConvexHull> {
    y.subsets_of_size(y.len() - f)
        .into_iter()
        .map(ConvexHull::new)
        .collect()
}

fn naive_contains(y: &PointMultiset, f: usize, p: &Point) -> bool {
    naive_hulls(y, f).iter().all(|h| h.contains(p))
}

fn naive_point(y: &PointMultiset, f: usize) -> Option<Point> {
    ConvexHull::common_point(&naive_hulls(y, f))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// d = 1 closed form: membership agrees with the naive all-LPs
    /// implementation on generators, random queries, and far-outside points.
    #[test]
    fn d1_closed_form_membership_agrees_with_naive(
        pts in points(5, 1),
        probe in -6.0f64..6.0,
    ) {
        let y = PointMultiset::new(pts.clone());
        for f in [1usize, 2] {
            let queries: Vec<Point> = pts
                .iter()
                .cloned()
                .chain([Point::new(vec![probe]), Point::new(vec![40.0])])
                .collect();
            for q in &queries {
                prop_assert_eq!(
                    gamma_contains(&y, f, q),
                    naive_contains(&y, f, q),
                    "d=1 membership diverged at {} (f={})", q, f
                );
            }
        }
    }

    /// d = 1 closed form: emptiness agrees with the naive implementation.
    #[test]
    fn d1_closed_form_emptiness_agrees_with_naive(pts in points(4, 1)) {
        let y = PointMultiset::new(pts);
        for f in [1usize, 2] {
            prop_assert_eq!(
                gamma_is_empty(&y, f),
                naive_point(&y, f).is_none(),
                "d=1 emptiness diverged (f={})", f
            );
        }
    }

    /// d = 1 closed form: the chosen point is in the naive Γ and is
    /// deterministic across calls and member reorderings.
    #[test]
    fn d1_closed_form_point_is_safe_and_deterministic(pts in points(6, 1)) {
        let y = PointMultiset::new(pts.clone());
        if let Some(p) = gamma_point(&y, 2) {
            prop_assert!(naive_contains(&y, 2, &p), "closed-form point {} outside naive Γ", p);
            let mut reordered = pts;
            reordered.reverse();
            let p2 = gamma_point(&PointMultiset::new(reordered), 2)
                .expect("Γ of a reordered multiset is the same set");
            prop_assert!(p.approx_eq(&p2, 1e-12));
        }
    }

    /// Lazy path (d = 2, above the Lemma 1 threshold): membership agrees
    /// with the naive implementation on generators and random queries.
    #[test]
    fn lazy_membership_agrees_with_naive(
        pts in points(5, 2),
        probe in prop::collection::vec(-6.0f64..6.0, 2),
    ) {
        let y = PointMultiset::new(pts.clone());
        let queries: Vec<Point> = pts
            .iter()
            .cloned()
            .chain([Point::new(probe), Point::new(vec![40.0, 40.0])])
            .collect();
        for q in &queries {
            prop_assert_eq!(
                gamma_contains(&y, 1, q),
                naive_contains(&y, 1, q),
                "lazy membership diverged at {}", q
            );
        }
    }

    /// Lazy path: the chosen point lies in the naive Γ (every materialised
    /// hull contains it) and never misses a Γ the naive path can certify
    /// non-empty.
    #[test]
    fn lazy_point_is_inside_naive_gamma(pts in points(6, 2)) {
        let y = PointMultiset::new(pts);
        match gamma_point(&y, 1) {
            Some(p) => prop_assert!(naive_contains(&y, 1, &p), "lazy point {} outside naive Γ", p),
            None => prop_assert!(
                naive_point(&y, 1).is_none(),
                "lazy reported empty where the naive joint LP found a point"
            ),
        }
    }

    /// Lazy path: emptiness decisions match the naive joint LP on clearly
    /// empty (below-threshold) shapes.
    #[test]
    fn lazy_emptiness_agrees_below_threshold(pts in points(3, 2)) {
        let y = PointMultiset::new(pts);
        prop_assert_eq!(gamma_is_empty(&y, 1), naive_point(&y, 1).is_none());
    }

    /// Chosen-point determinism: same multiset ⇒ same point, across repeated
    /// calls, member reorderings (different processes receive the same
    /// multiset in different orders), and the cached path.
    #[test]
    fn chosen_point_is_deterministic_across_processes(pts in points(5, 2)) {
        let y = PointMultiset::new(pts.clone());
        let mut reordered = pts;
        reordered.rotate_left(2);
        let perm = PointMultiset::new(reordered);
        let cache = GammaCache::new();
        let direct = gamma_point(&y, 1);
        let again = gamma_point(&y, 1);
        let permuted = gamma_point(&perm, 1);
        let cached = cache.find_point(&y, 1);
        let cached_perm = cache.find_point(&perm, 1);
        prop_assert_eq!(direct.is_some(), permuted.is_some());
        prop_assert_eq!(direct.is_some(), cached.is_some());
        if let (Some(a), Some(b), Some(c), Some(d), Some(e)) =
            (&direct, &again, &permuted, &cached, &cached_perm)
        {
            prop_assert!(a.approx_eq(b, 1e-15));
            prop_assert!(a.approx_eq(c, 1e-15), "reordering changed the point: {} vs {}", a, c);
            prop_assert!(a.approx_eq(d, 1e-15), "cache changed the point: {} vs {}", a, d);
            prop_assert!(a.approx_eq(e, 1e-15));
        }
    }

    /// Cached path: membership and emptiness answers are identical to the
    /// uncached engine, before and after the entry is resident.
    #[test]
    fn cached_queries_agree_with_uncached(
        pts in points(5, 2),
        probe in prop::collection::vec(-6.0f64..6.0, 2),
    ) {
        let y = PointMultiset::new(pts);
        let q = Point::new(probe);
        let cache = GammaCache::new();
        for _ in 0..2 {
            prop_assert_eq!(cache.contains(&y, 1, &q), gamma_contains(&y, 1, &q));
            prop_assert_eq!(cache.is_empty_region(&y, 1), gamma_is_empty(&y, 1));
        }
        prop_assert!(cache.hits() > 0, "second pass must be served from the cache");
    }

    /// f = 0 degenerates to plain hull membership for the lazy engine too.
    #[test]
    fn zero_fault_gamma_is_plain_hull(pts in points(4, 2), probe in prop::collection::vec(-6.0f64..6.0, 2)) {
        let y = PointMultiset::new(pts);
        let q = Point::new(probe);
        let hull = ConvexHull::new(y.clone());
        prop_assert_eq!(gamma_contains(&y, 0, &q), hull.contains(&q));
    }
}
