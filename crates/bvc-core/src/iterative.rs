//! Iterative BVC over an incomplete communication graph.
//!
//! *Iterative Byzantine Vector Consensus in Incomplete Graphs* (Vaidya 2013,
//! arXiv:1307.2483) studies the simplest protocol shape on a *declared*
//! directed topology: each process keeps a single state vector, sends it to
//! its out-neighbors every round, and updates it to a convex combination of
//! its own state and the values received from its in-neighbors.  The
//! Byzantine defence is entirely local — each round the process forms the
//! multiset `Y_i[t]` of its in-neighborhood values plus its own state and
//! picks the deterministic safe-area point `z_i[t] ∈ Γ(Y_i[t])` (removing
//! `f` values), then moves halfway:
//!
//! ```text
//! v_i[t] = ( v_i[t−1] + z_i[t] ) / 2,      z_i[t] ∈ Γ(Y_i[t], f)
//! ```
//!
//! `z_i[t]` lies in the hull of every `(|Y_i|−f)`-sub-multiset, hence in the
//! hull of the honest values among `Y_i[t]` whenever at most `f` in-neighbors
//! are Byzantine — so validity is preserved inductively on **any** topology.
//! Convergence (ε-agreement) additionally needs the graph to satisfy the
//! sufficiency condition checked by
//! [`Topology::iterative_sufficiency`](bvc_topology::Topology); on graphs
//! that violate it the protocol still runs and still preserves validity, but
//! the honest states may never contract — which is exactly what the scenario
//! engine records.
//!
//! When `Γ(Y_i[t])` is empty (possible below the Lemma-1 threshold, e.g. on
//! very sparse neighborhoods) or fewer than `f + 1` values are available,
//! the process keeps its state for the round — a safe no-op.
//!
//! The safe-area evaluations reuse the shared Γ engine: the `d = 1` closed
//! form, the trimmed-box probe and the [`GammaCache`](bvc_geometry::GammaCache)
//! all apply unchanged to the per-neighborhood multisets.

use crate::config::BvcConfig;
use crate::convergence::{gamma_iterative, round_threshold};
use crate::restricted::StateMsg;
use crate::witness::average_state;
use bvc_adversary::PointForge;
use bvc_geometry::{gamma_point, Point, PointMultiset, SharedGammaCache};
use bvc_net::{Delivery, Outgoing, ProcessId, SyncProcess};
use bvc_topology::Topology;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The round budget of the iterative protocol: the Section-3.2 termination
/// rule evaluated at the conservative incomplete-graph contraction parameter
/// [`gamma_iterative`].
pub fn iterative_round_budget(config: &BvcConfig) -> usize {
    round_threshold(
        gamma_iterative(config.n.max(2)),
        config.lower_bound,
        config.upper_bound,
        config.epsilon,
    )
}

/// Honest process of the iterative incomplete-graph protocol.
pub struct IterativeBvcProcess {
    config: BvcConfig,
    me: usize,
    topology: Arc<Topology>,
    state: Point,
    max_rounds: usize,
    history: Vec<Point>,
    decision: Option<Point>,
    gamma_cache: Option<SharedGammaCache>,
}

impl IterativeBvcProcess {
    /// Creates the honest process with index `me` and input `input` on the
    /// given topology.
    ///
    /// # Panics
    ///
    /// Panics if `me >= config.n`, `input.dim() != config.d`, or the topology
    /// size differs from `config.n`.
    pub fn new(config: BvcConfig, me: usize, input: Point, topology: Arc<Topology>) -> Self {
        assert!(me < config.n, "process index {me} out of range");
        assert_eq!(input.dim(), config.d, "input dimension must equal config.d");
        assert_eq!(
            topology.len(),
            config.n,
            "topology size must match config.n"
        );
        let max_rounds = iterative_round_budget(&config);
        Self {
            history: vec![input.clone()],
            config,
            me,
            topology,
            state: input,
            max_rounds,
            decision: None,
            gamma_cache: None,
        }
    }

    /// Shares a Γ cache with this process's round loop.  Neighborhood
    /// multisets overlap across processes and repeat across rounds as the
    /// states converge, so the cache collapses recomputation; cached and
    /// uncached runs produce identical states.
    pub fn with_gamma_cache(mut self, cache: SharedGammaCache) -> Self {
        self.gamma_cache = Some(cache);
        self
    }

    /// Total number of executor rounds needed: the round budget of exchanges
    /// plus one closing round in which the last inbox is processed.
    pub fn total_rounds(config: &BvcConfig) -> usize {
        iterative_round_budget(config) + 1
    }

    /// Per-round states (`history()[t]` is `v_i[t]`, index 0 the input).
    pub fn history(&self) -> &[Point] {
        &self.history
    }

    fn apply_update(&mut self, received: &[Delivery<StateMsg>], round: usize) {
        // Y_i[t]: one value per in-neighbor that reported a state for this
        // round (first wins), plus this process's own state.
        let mut per_sender: BTreeMap<usize, Point> = BTreeMap::new();
        for delivery in received {
            if delivery.msg.round == round && delivery.msg.state.dim() == self.config.d {
                per_sender
                    .entry(delivery.from.index())
                    .or_insert_with(|| delivery.msg.state.clone());
            }
        }
        per_sender.insert(self.me, self.state.clone());
        let values: Vec<Point> = per_sender.into_values().collect();
        if values.len() > self.config.f {
            let y = PointMultiset::new(values);
            let z = match &self.gamma_cache {
                Some(cache) => cache.find_point(&y, self.config.f),
                None => gamma_point(&y, self.config.f),
            };
            if let Some(z) = z {
                self.state = average_state(&[self.state.clone(), z]);
            }
        }
        self.history.push(self.state.clone());
    }
}

impl SyncProcess for IterativeBvcProcess {
    type Msg = StateMsg;
    type Output = Point;

    fn round(&mut self, round: usize, inbox: &[Delivery<StateMsg>]) -> Vec<Outgoing<StateMsg>> {
        // The inbox holds the states the in-neighbors sent in round `round − 1`.
        if round >= 2 && round <= self.max_rounds + 1 {
            self.apply_update(inbox, round - 1);
            if round == self.max_rounds + 1 {
                self.decision = Some(self.state.clone());
            }
        }
        if round <= self.max_rounds {
            let msg = StateMsg {
                round,
                state: self.state.clone(),
            };
            self.topology
                .out_neighbors(self.me)
                .iter()
                .map(|&to| Outgoing::new(ProcessId::new(to), msg.clone()))
                .collect()
        } else {
            Vec::new()
        }
    }

    fn output(&self) -> Option<Point> {
        self.decision.clone()
    }

    fn trace_state(&self) -> Option<Vec<f64>> {
        Some(self.state.coords().to_vec())
    }
}

/// Byzantine participant of the iterative protocol: forges the state it
/// reports, per out-neighbor.
pub struct ByzantineIterativeProcess {
    me: usize,
    topology: Arc<Topology>,
    forge: PointForge,
}

impl ByzantineIterativeProcess {
    /// Creates the Byzantine process.
    ///
    /// # Panics
    ///
    /// Panics if `me` is out of range for the topology.
    pub fn new(me: usize, topology: Arc<Topology>, forge: PointForge) -> Self {
        assert!(me < topology.len(), "process index {me} out of range");
        Self {
            me,
            topology,
            forge,
        }
    }
}

impl SyncProcess for ByzantineIterativeProcess {
    type Msg = StateMsg;
    type Output = Point;

    fn round(&mut self, round: usize, _inbox: &[Delivery<StateMsg>]) -> Vec<Outgoing<StateMsg>> {
        let mut out = Vec::new();
        for &to in self.topology.out_neighbors(self.me) {
            if let Some(point) = self.forge.forge(round, to) {
                out.push(Outgoing::new(
                    ProcessId::new(to),
                    StateMsg {
                        round,
                        state: point,
                    },
                ));
            }
        }
        out
    }

    fn output(&self) -> Option<Point> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvc_net::SyncNetwork;

    fn run_honest(
        topology: Topology,
        f: usize,
        inputs: Vec<Point>,
        epsilon: f64,
    ) -> Vec<Option<Point>> {
        let n = topology.len();
        let config = BvcConfig::new(n, f, inputs[0].dim())
            .unwrap()
            .with_epsilon(epsilon)
            .unwrap();
        let topology = Arc::new(topology);
        let processes: Vec<Box<dyn SyncProcess<Msg = StateMsg, Output = Point>>> = inputs
            .into_iter()
            .enumerate()
            .map(|(i, input)| {
                Box::new(IterativeBvcProcess::new(
                    config.clone(),
                    i,
                    input,
                    Arc::clone(&topology),
                )) as Box<dyn SyncProcess<Msg = StateMsg, Output = Point>>
            })
            .collect();
        let wait: Vec<usize> = (0..n).collect();
        SyncNetwork::new(processes, IterativeBvcProcess::total_rounds(&config))
            .with_topology(topology.as_ref().clone())
            .run(&wait)
            .outputs
    }

    #[test]
    fn fault_free_ring_reaches_epsilon_agreement() {
        let inputs: Vec<Point> = (0..6).map(|i| Point::new(vec![i as f64 / 5.0])).collect();
        let outputs = run_honest(Topology::ring(6), 0, inputs, 0.05);
        let decisions: Vec<&Point> = outputs.iter().map(|o| o.as_ref().unwrap()).collect();
        for a in &decisions {
            for b in &decisions {
                assert!(
                    a.linf_distance(b) <= 0.05,
                    "ring states must contract: {a} vs {b}"
                );
            }
            assert!(
                (0.0..=1.0).contains(&a.coord(0)),
                "validity: decisions stay in the input hull"
            );
        }
    }

    #[test]
    fn states_stay_inside_the_running_hull_in_2d() {
        let inputs = vec![
            Point::new(vec![0.0, 0.0]),
            Point::new(vec![1.0, 0.0]),
            Point::new(vec![0.0, 1.0]),
            Point::new(vec![1.0, 1.0]),
            Point::new(vec![0.5, 0.5]),
        ];
        let outputs = run_honest(Topology::complete(5), 0, inputs, 0.1);
        for o in outputs {
            let p = o.expect("everyone decides at the budget");
            assert!(p.coords().iter().all(|&c| (0.0..=1.0).contains(&c)));
        }
    }

    #[test]
    fn empty_neighborhood_keeps_the_state() {
        // Two isolated nodes: no exchange ever happens, so each decision is
        // its own input (validity holds trivially; agreement cannot).
        let t = Topology::from_edges(2, &[], false).unwrap();
        let inputs = vec![Point::new(vec![0.0]), Point::new(vec![1.0])];
        let outputs = run_honest(t, 0, inputs, 0.1);
        assert_eq!(outputs[0].as_ref().unwrap().coord(0), 0.0);
        assert_eq!(outputs[1].as_ref().unwrap().coord(0), 1.0);
    }

    #[test]
    fn round_budget_is_positive_and_grows_with_precision() {
        let coarse = BvcConfig::new(8, 1, 1).unwrap().with_epsilon(0.1).unwrap();
        let fine = BvcConfig::new(8, 1, 1)
            .unwrap()
            .with_epsilon(0.001)
            .unwrap();
        assert!(iterative_round_budget(&coarse) >= 1);
        assert!(iterative_round_budget(&fine) > iterative_round_budget(&coarse));
    }
}
